// Schedule (de)serialisation: a line-oriented text format so fault
// plans can be saved from one tool run and replayed by another (and so
// the parser can be fuzzed, mirroring internal/drivetable).
//
//	mnoc-fault-schedule v1
//	n 8
//	cycles 1000000
//	droprate 0.0002
//	dropseed 12345
//	fault <cycle> <kind> <node> <aux> <severity-db> <duration>
//	...
//	end

package fault

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mnoc/internal/phys"
)

const scheduleMagic = "mnoc-fault-schedule v1"

// maxScheduleFaults bounds how many fault lines Parse accepts,
// protecting callers from maliciously huge inputs.
const maxScheduleFaults = 1 << 20

// Write serialises the schedule. The output is canonical: identical
// schedules produce byte-identical files.
func (s *Schedule) Write(w io.Writer) error {
	if err := s.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, scheduleMagic)
	fmt.Fprintf(bw, "n %d\n", s.N)
	fmt.Fprintf(bw, "cycles %d\n", s.Cycles)
	fmt.Fprintf(bw, "droprate %s\n", strconv.FormatFloat(s.DropRate, 'g', -1, 64))
	fmt.Fprintf(bw, "dropseed %d\n", s.DropSeed)
	for _, f := range s.Faults {
		fmt.Fprintf(bw, "fault %d %s %d %d %s %d\n",
			f.Cycle, f.Kind, f.Node, f.Aux,
			strconv.FormatFloat(float64(f.SeverityDB), 'g', -1, 64), f.DurationCycles)
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// Parse reads a schedule written by Write. Anything accepted validates
// and round-trips byte-identically.
func Parse(r io.Reader) (*Schedule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}

	head, err := line()
	if err != nil {
		return nil, fmt.Errorf("fault: reading header: %w", err)
	}
	if head != scheduleMagic {
		return nil, fmt.Errorf("fault: bad magic %q", head)
	}

	s := &Schedule{}
	intField := func(name string, dst *uint64) error {
		l, err := line()
		if err != nil {
			return err
		}
		var raw string
		if _, err := fmt.Sscanf(l, name+" %s", &raw); err != nil {
			return fmt.Errorf("line %q: %w", l, err)
		}
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			return fmt.Errorf("line %q: %w", l, err)
		}
		*dst = v
		return nil
	}

	var n uint64
	if err := intField("n", &n); err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("fault: implausible node count %d", n)
	}
	s.N = int(n)
	if err := intField("cycles", &s.Cycles); err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	l, err := line()
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	var rateRaw string
	if _, err := fmt.Sscanf(l, "droprate %s", &rateRaw); err != nil {
		return nil, fmt.Errorf("fault: line %q: %w", l, err)
	}
	if s.DropRate, err = strconv.ParseFloat(rateRaw, 64); err != nil {
		return nil, fmt.Errorf("fault: line %q: %w", l, err)
	}
	if err := intField("dropseed", &s.DropSeed); err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}

	for {
		l, err := line()
		if err != nil {
			return nil, fmt.Errorf("fault: reading events: %w", err)
		}
		if l == "end" {
			break
		}
		if len(s.Faults) >= maxScheduleFaults {
			return nil, fmt.Errorf("fault: more than %d events", maxScheduleFaults)
		}
		fields := strings.Fields(l)
		if len(fields) != 7 || fields[0] != "fault" {
			return nil, fmt.Errorf("fault: malformed event line %q", l)
		}
		var f Fault
		if f.Cycle, err = strconv.ParseUint(fields[1], 10, 64); err != nil {
			return nil, fmt.Errorf("fault: event cycle %q: %w", fields[1], err)
		}
		if f.Kind, err = KindFromString(fields[2]); err != nil {
			return nil, err
		}
		if f.Node, err = strconv.Atoi(fields[3]); err != nil {
			return nil, fmt.Errorf("fault: event node %q: %w", fields[3], err)
		}
		if f.Aux, err = strconv.Atoi(fields[4]); err != nil {
			return nil, fmt.Errorf("fault: event aux %q: %w", fields[4], err)
		}
		sev, err := strconv.ParseFloat(fields[5], 64)
		if err != nil {
			return nil, fmt.Errorf("fault: event severity %q: %w", fields[5], err)
		}
		f.SeverityDB = phys.Decibels(sev)
		if f.DurationCycles, err = strconv.ParseUint(fields[6], 10, 64); err != nil {
			return nil, fmt.Errorf("fault: event duration %q: %w", fields[6], err)
		}
		s.Faults = append(s.Faults, f)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
