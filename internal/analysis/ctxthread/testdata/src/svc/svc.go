// Package svc exercises the ctxthread analyzer: a function that
// already receives a context may not mint a fresh root context.
package svc

import "context"

func Handle(ctx context.Context) error {
	bg := context.Background() // want `ctxthread: Handle already receives a context.Context but calls context.Background`
	_ = bg
	todo := context.TODO() // want `ctxthread: Handle already receives a context.Context but calls context.TODO`
	_ = todo
	return work(ctx)
}

func Root() context.Context {
	return context.Background() // no context parameter: fine
}

func work(ctx context.Context) error {
	return ctx.Err() // threading the parameter: fine
}

func Detached(ctx context.Context, fn func(context.Context)) {
	//mnoclint:allow ctxthread fixture: the subtree deliberately outlives the caller
	fn(context.Background())
}
