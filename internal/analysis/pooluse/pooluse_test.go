package pooluse_test

import (
	"testing"

	"mnoc/internal/analysis/analysistest"
	"mnoc/internal/analysis/pooluse"
)

func TestPoolUse(t *testing.T) {
	// sink is loaded alongside a so the module sees its declarations
	// and the escape facts propagate across the package boundary.
	analysistest.Run(t, pooluse.Analyzer, "a", "sink")
}
