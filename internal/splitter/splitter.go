// Package splitter implements the paper's Appendix A: designing the
// per-destination waveguide splitter ratios S_j and the per-mode source
// powers Pmode_m that realise a given local power topology at minimum
// weighted source power (Equation 1).
//
// The key structure (Appendix A): destinations unique to power mode m
// receive α_m·Pmin when the source injects the mode-0 power, with
// α_0 = 1 > α_1 > … > α_{M−1} > 0. Injecting Pmode_m = Pmode_0/α_m then
// delivers exactly Pmin to mode-m destinations and > Pmin to all
// lower-mode destinations, which preserves the topology's nesting
// invariant. Because the splitter taps divert exactly each destination's
// required power, the minimal injected mode-0 power has the closed form
//
//	Pmode_0 = Σ_j α_{mode(j)}·Pmin / T(src,j)
//
// where T is the waveguide-only transmission — all other losses are
// folded into Pmin, exactly as the paper states ("Pmin … considers the
// insertion loss of various optical devices and photoreceiver mIOP").
// The remaining free choice is the α vector, optimised to minimise
// Σ_m w_m·Pmode_m; we provide both the paper's grid search and the exact
// stationary-point solution they approximate.
package splitter

import (
	"fmt"
	"math"

	"mnoc/internal/device"
	"mnoc/internal/phys"
	"mnoc/internal/waveguide"
)

// Params carries the optical parameters needed to size splitters.
type Params struct {
	Layout waveguide.Layout

	// PminUW is the effective minimum power a destination's tap must
	// divert: photodetector mIOP plus chromophore loss, scaled by the
	// receiver-side splitter insertion loss.
	PminUW phys.MicroWatts

	// CouplerLossDB is the source-side coupler loss between the QD LED
	// and the waveguide (Table 3: 1 dB). It scales the LED output
	// relative to the power present in the guide.
	CouplerLossDB phys.Decibels
}

// DefaultParams assembles Params from the Table 3 device models for an
// n-node crossbar.
func DefaultParams(n int) Params {
	return ParamsFromDevices(waveguide.NewSerpentine(n),
		device.DefaultPhotodetector(), device.DefaultChromophore(), 1.0, 0.2)
}

// ParamsFromDevices folds receiver-side device losses into Pmin:
// Pmin = (mIOP + chromophore loss) · splitterInsertion.
func ParamsFromDevices(l waveguide.Layout, pd device.Photodetector, ch device.Chromophore,
	couplerLossDB, splitterLossDB phys.Decibels) Params {
	pmin := (pd.MIOPUW + ch.LossUW(pd.MIOPUW)).Scale(splitterLossDB.Plus(pd.InsertionLossDB).Linear())
	return Params{Layout: l, PminUW: pmin, CouplerLossDB: couplerLossDB}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if err := p.Layout.Validate(); err != nil {
		return err
	}
	if err := phys.CheckPositive("Params.PminUW", p.PminUW); err != nil {
		return err
	}
	if p.CouplerLossDB < 0 {
		return fmt.Errorf("splitter: negative coupler loss %g dB", p.CouplerLossDB)
	}
	return nil
}

// Design is a solved splitter design for one source.
type Design struct {
	// Chain holds the fabricated tap ratios and source direction split.
	Chain waveguide.Chain
	// Alphas[m] is the mode-m scale factor (Alphas[0] == 1).
	Alphas []float64
	// ModePowerUW[m] is the optical power the QD LED must emit for mode
	// m (includes the source coupler loss).
	ModePowerUW []phys.MicroWatts
	// InGuideMode0UW is the mode-0 power present in the waveguide
	// (before the coupler loss is applied), i.e. Pmode_0 of Appendix A.
	InGuideMode0UW phys.MicroWatts
}

// WeightedPowerUW evaluates Equation 1 for the design under the given
// per-mode communication weights (which need not be the weights the
// design was optimised for).
func (d *Design) WeightedPowerUW(weights []float64) (phys.MicroWatts, error) {
	if len(weights) != len(d.ModePowerUW) {
		return 0, fmt.Errorf("splitter: %d weights for %d modes", len(weights), len(d.ModePowerUW))
	}
	sum := 0.0
	for m, w := range weights {
		sum += w * float64(d.ModePowerUW[m])
	}
	return phys.MicroWatts(sum), nil
}

// ModeCosts returns A_m = Σ_{j : mode(j)=m} Pmin/T(src,j) for each mode:
// the in-guide power mode m's members would require at full strength.
// modeOf[j] gives destination j's mode index, and must be -1 exactly at
// j == src. Modes must be in [0, M).
func ModeCosts(p Params, src int, modeOf []int, modes int) ([]phys.MicroWatts, error) {
	return maskedModeCosts(p, src, modeOf, modes, nil)
}

// maskedModeCosts is ModeCosts with an optional exclusion mask:
// excluded destinations contribute nothing (their taps will be zero).
func maskedModeCosts(p Params, src int, modeOf []int, modes int, excluded []bool) ([]phys.MicroWatts, error) {
	if len(modeOf) != p.Layout.N {
		return nil, fmt.Errorf("splitter: %d mode entries for %d nodes", len(modeOf), p.Layout.N)
	}
	if modes < 1 {
		return nil, fmt.Errorf("splitter: need at least one mode, got %d", modes)
	}
	if excluded != nil && len(excluded) != p.Layout.N {
		return nil, fmt.Errorf("splitter: %d exclusion entries for %d nodes", len(excluded), p.Layout.N)
	}
	a := make([]phys.MicroWatts, modes)
	for j, m := range modeOf {
		if j == src {
			if m != -1 {
				return nil, fmt.Errorf("splitter: source %d assigned mode %d, want -1", src, m)
			}
			continue
		}
		if m < 0 || m >= modes {
			return nil, fmt.Errorf("splitter: destination %d mode %d out of [0,%d)", j, m, modes)
		}
		if excluded != nil && excluded[j] {
			continue
		}
		a[m] += p.PminUW.Over(p.Layout.PathTransmission(src, j))
	}
	return a, nil
}

// WeightedPowerForAlphas evaluates Σ_m w_m·(Σ_l α_l·A_l)/α_m, the
// objective of the α search, without building a full design.
func WeightedPowerForAlphas(modeCosts []phys.MicroWatts, alphas, weights []float64) phys.MicroWatts {
	p0 := 0.0
	for m, a := range alphas {
		p0 += a * float64(modeCosts[m])
	}
	sum := 0.0
	for m, w := range weights {
		sum += w * p0 / alphas[m]
	}
	return phys.MicroWatts(sum)
}

// OptimalAlphasTwoMode returns the exact minimiser for a 2-mode design:
// α1 = sqrt(w1·A0 / (w0·A1)), clamped into (0,1]. Degenerate inputs
// (empty mode, zero weight) fall back to α1 = 1.
func OptimalAlphasTwoMode(modeCosts []phys.MicroWatts, weights []float64) []float64 {
	a0, a1 := float64(modeCosts[0]), float64(modeCosts[1])
	w0, w1 := weights[0], weights[1]
	alpha := 1.0
	if a1 > 0 && w0 > 0 {
		alpha = math.Sqrt(w1 * a0 / (w0 * a1))
		if alpha > 1 {
			alpha = 1
		}
		if alpha < minAlpha {
			alpha = minAlpha
		}
	}
	return []float64{1, alpha}
}

// minAlpha bounds how faint a high mode may be in mode 0. Below this the
// required tap ratios become unfabricable and Pmode_m explodes; the
// paper's 0.1-grid search has the same implicit floor.
const minAlpha = 0.01

// OptimalAlphas finds the α vector minimising the weighted power. It
// runs the paper's grid search (0.1 steps) followed by two refinement
// passes (0.01 then 0.001 steps) of per-coordinate descent, then clamps
// to the decreasing order the topology nesting requires.
func OptimalAlphas(modeCosts []phys.MicroWatts, weights []float64) []float64 {
	m := len(modeCosts)
	alphas := make([]float64, m)
	for i := range alphas {
		alphas[i] = 1
	}
	if m == 1 {
		return alphas
	}
	if m == 2 {
		return OptimalAlphasTwoMode(modeCosts, weights)
	}
	// Coordinate descent over a shrinking grid. Each coordinate is
	// optimised holding the others fixed; the objective is convex in
	// each 1/α_k direction so this converges quickly.
	for _, step := range []float64{0.1, 0.01, 0.001} {
		for iter := 0; iter < 4; iter++ {
			for k := 1; k < m; k++ {
				best, bestV := alphas[k], WeightedPowerForAlphas(modeCosts, alphas, weights)
				for v := step; v <= 1.0+1e-9; v += step {
					alphas[k] = v
					obj := WeightedPowerForAlphas(modeCosts, alphas, weights)
					if obj < bestV {
						best, bestV = v, obj
					}
				}
				alphas[k] = best
			}
		}
	}
	// Enforce the nesting invariant α_0 ≥ α_1 ≥ … (strictly decreasing
	// except where a mode is empty).
	for k := 1; k < m; k++ {
		if alphas[k] > alphas[k-1] {
			alphas[k] = alphas[k-1]
		}
		if alphas[k] < minAlpha {
			alphas[k] = minAlpha
		}
	}
	return alphas
}

// Solve produces the full splitter design for one source: mode powers,
// tap ratios and direction split. weights is the assumed fraction of
// the source's communication in each mode (Equation 1's w_m); it is used
// only to optimise the α vector.
//
//mnoclint:hot
func Solve(p Params, src int, modeOf []int, weights []float64) (*Design, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	modes := len(weights)
	costs, err := ModeCosts(p, src, modeOf, modes)
	if err != nil {
		return nil, err
	}
	if err := checkWeights(weights); err != nil {
		return nil, err
	}
	alphas := OptimalAlphas(costs, weights)
	return buildDesign(p, src, modeOf, alphas, nil)
}

// SolveMasked is Solve with a set of excluded destinations: their taps
// are forced to zero and no power is budgeted for them. It is the
// graceful-degradation re-planning primitive — after a permanent
// receiver death the system re-solves each source's splitter chain
// without the dead endpoint, shrinking every mode's injected power
// ("excluding failed endpoints"). A nil mask is equivalent to Solve.
func SolveMasked(p Params, src int, modeOf []int, weights []float64, excluded []bool) (*Design, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	modes := len(weights)
	costs, err := maskedModeCosts(p, src, modeOf, modes, excluded)
	if err != nil {
		return nil, err
	}
	if err := checkWeights(weights); err != nil {
		return nil, err
	}
	alphas := OptimalAlphas(costs, weights)
	return buildDesign(p, src, modeOf, alphas, excluded)
}

// SolveWithAlphas builds the design for caller-chosen α values (used by
// tests and sensitivity studies). alphas[0] must be 1 and the vector
// must be non-increasing.
func SolveWithAlphas(p Params, src int, modeOf []int, alphas []float64) (*Design, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(alphas) == 0 || alphas[0] != 1 {
		return nil, fmt.Errorf("splitter: alphas must start at 1, got %v", alphas)
	}
	for m := 1; m < len(alphas); m++ {
		if alphas[m] > alphas[m-1] || alphas[m] <= 0 {
			return nil, fmt.Errorf("splitter: alphas must be non-increasing in (0,1], got %v", alphas)
		}
	}
	if _, err := ModeCosts(p, src, modeOf, len(alphas)); err != nil {
		return nil, err
	}
	return buildDesign(p, src, modeOf, alphas, nil)
}

func checkWeights(w []float64) error {
	sum := 0.0
	for m, v := range w {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("splitter: weight[%d] = %g", m, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("splitter: weights sum to %g, want 1", sum)
	}
	return nil
}

// buildDesign runs the backward recurrence of Section 3.2.1 on each side
// of the source: the farthest reached node absorbs everything (S=1) and
// each nearer node's incident power is its own requirement plus the
// requirement of everything beyond it inflated by the intervening
// segment loss. That yields the minimal injected power and, walking
// forward again, the tap ratios.
func buildDesign(p Params, src int, modeOf []int, alphas []float64, excluded []bool) (*Design, error) {
	n := p.Layout.N
	t := float64(p.Layout.SegmentTransmission())

	// req and incident are recurrence scratch, dead once the taps are
	// derived; one backing array halves the transient allocations of a
	// design sweep (the taps slice stays separate — it outlives the
	// call inside the returned Chain).
	scratch := make([]float64, 2*n)
	req := scratch[:n] // β_j·Pmin at each destination
	for j, m := range modeOf {
		if j == src || (excluded != nil && excluded[j]) {
			continue
		}
		req[j] = alphas[m] * float64(p.PminUW)
	}

	// Backward recurrence toward the source on each side. incident[j]
	// is the power that must arrive at node j (tap input).
	incident := scratch[n:]
	needLow, needHigh := 0.0, 0.0
	if src > 0 {
		// Walk from the far end (index 0) toward the source.
		carry := 0.0
		for j := 0; j <= src-1; j++ {
			// carry is the power that must continue past node j
			// toward lower indices, measured at node j.
			incident[j] = req[j] + carry
			carry = incident[j] / t
		}
		needLow = carry // power required entering the low side at the source
	}
	if src < n-1 {
		carry := 0.0
		for j := n - 1; j >= src+1; j-- {
			incident[j] = req[j] + carry
			carry = incident[j] / t
		}
		needHigh = carry
	}
	inGuide := needLow + needHigh
	if inGuide <= 0 {
		return nil, fmt.Errorf("splitter: source %d has no reachable destinations", src)
	}

	taps := make([]float64, n)
	for j := 0; j < n; j++ {
		if j == src || incident[j] == 0 {
			continue
		}
		taps[j] = req[j] / incident[j]
		if taps[j] > 1 { // numerical safety; cannot happen analytically
			taps[j] = 1
		}
	}

	chain := waveguide.Chain{Layout: p.Layout, Source: src, Taps: taps, DirLow: 0}
	if inGuide > 0 {
		chain.DirLow = needLow / inGuide
	}
	if err := chain.Validate(); err != nil {
		return nil, err
	}

	coupler := p.CouplerLossDB.Linear()
	modePower := make([]phys.MicroWatts, len(alphas))
	for m, a := range alphas {
		modePower[m] = phys.MicroWatts(inGuide / a * coupler)
	}
	return &Design{
		Chain:          chain,
		Alphas:         append([]float64(nil), alphas...),
		ModePowerUW:    modePower,
		InGuideMode0UW: phys.MicroWatts(inGuide),
	}, nil
}

// WorstCaseDesign re-prices a solved design under the worst-case
// (longest-path) insertion-loss accounting used by the optical-crossbar
// comparison literature (Li et al., "Optical Crossbars on Chip",
// arXiv:1512.07492): instead of charging each destination its own path
// transmission T(src,j), every destination is budgeted as if it sat at
// the far end of the serpentine, so
//
//	Pmode_0^wc = Σ_j α_{mode(j)}·Pmin / T_wc(src)
//
// with T_wc the transmission of the longest path from src. The
// fabricated artefacts — taps, direction split, α vector — are exactly
// those of the input design; only the power accounting moves, which is
// what makes worst-vs-average a per-topology Pareto comparison rather
// than a different design.
func WorstCaseDesign(p Params, d *Design, modeOf []int) (*Design, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	src := d.Chain.Source
	if len(modeOf) != p.Layout.N {
		return nil, fmt.Errorf("splitter: %d mode entries for %d nodes", len(modeOf), p.Layout.N)
	}
	tWC := float64(p.Layout.WorstPathTransmission(src))
	inGuide := 0.0
	for j, m := range modeOf {
		if j == src {
			if m != -1 {
				return nil, fmt.Errorf("splitter: source %d assigned mode %d, want -1", src, m)
			}
			continue
		}
		if m < 0 || m >= len(d.Alphas) {
			return nil, fmt.Errorf("splitter: destination %d mode %d out of [0,%d)", j, m, len(d.Alphas))
		}
		inGuide += d.Alphas[m] * float64(p.PminUW) / tWC
	}
	if inGuide <= 0 {
		return nil, fmt.Errorf("splitter: source %d has no reachable destinations", src)
	}
	coupler := p.CouplerLossDB.Linear()
	out := *d
	out.Alphas = append([]float64(nil), d.Alphas...)
	out.ModePowerUW = make([]phys.MicroWatts, len(d.Alphas))
	for m, a := range d.Alphas {
		out.ModePowerUW[m] = phys.MicroWatts(inGuide / a * coupler)
	}
	out.InGuideMode0UW = phys.MicroWatts(inGuide)
	return &out, nil
}

// BroadcastDesign is the single-mode (broadcast-only) special case used
// for the base mNoC and for Figures 3 and 6.
func BroadcastDesign(p Params, src int) (*Design, error) {
	modeOf := make([]int, p.Layout.N)
	modeOf[src] = -1
	return SolveWithAlphas(p, src, modeOf, []float64{1})
}

// ReachPower returns the in-guide power needed for src to deliver Pmin
// to exactly the destination set reach (a single-mode topology over a
// subset). Used by the Figure 3 broadcast-distance sweep.
func ReachPower(p Params, src int, reach []int) (phys.MicroWatts, error) {
	if len(reach) == 0 {
		return 0, fmt.Errorf("splitter: empty reach set")
	}
	var sum phys.MicroWatts
	for _, j := range reach {
		if j == src || j < 0 || j >= p.Layout.N {
			return 0, fmt.Errorf("splitter: bad destination %d", j)
		}
		sum += p.PminUW.Over(p.Layout.PathTransmission(src, j))
	}
	return sum, nil
}
