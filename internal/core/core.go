// Package core is the high-level entry point of the library: it wires
// the optical device models, splitter designer, power-topology builders,
// QAP thread mapper and power/performance evaluators into a small,
// cohesive API. Examples and command-line tools work exclusively
// through this package; the paper's whole pipeline is:
//
//	sys, _ := core.NewSystem(256)
//	profile, _ := sys.Profile("water_s", 1)          // traffic matrix
//	des, _ := sys.CommAwareDesign(profile, 4)        // power topology
//	des, _ = des.WithQAPMapping(profile, 1)          // thread mapping
//	bd, _ := des.Power(profile, 1e6)                 // breakdown, µW
package core

import (
	"fmt"

	"mnoc/internal/drivetable"
	"mnoc/internal/mapping"
	"mnoc/internal/power"
	"mnoc/internal/topo"
	"mnoc/internal/trace"
	"mnoc/internal/workload"
)

// System is a configured N-node mNoC platform.
type System struct {
	// Cfg holds the optical and electrical device parameters (Table 3
	// defaults; mutate before creating designs to explore variants).
	Cfg power.Config
}

// NewSystem builds an n-node system with the paper's default devices.
func NewSystem(n int) (*System, error) {
	cfg := power.DefaultConfig(n)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &System{Cfg: cfg}, nil
}

// N is the crossbar radix.
func (s *System) N() int { return s.Cfg.N }

// Profile returns the named SPLASH-2 stand-in's traffic matrix,
// calibrated so the base (single-mode, naive-mapping) mNoC reproduces
// the paper's Table 4 power over a 1M-cycle window.
func (s *System) Profile(benchmark string, seed int64) (*trace.Matrix, error) {
	b, err := workload.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	base, err := power.NewBaseMNoC(s.Cfg)
	if err != nil {
		return nil, err
	}
	shape, err := b.Matrix(s.N(), seed)
	if err != nil {
		return nil, err
	}
	m, _, err := power.ScaleToTarget(base, shape, ProfileCycles, b.PaperBaseWatts)
	return m, err
}

// ProfileCycles is the window length (clock cycles) Profile calibrates
// against; Power evaluations of profiled matrices should use the same
// window.
const ProfileCycles = 1e6

// Design bundles a power topology, its per-source splitter designs, and
// an optional thread mapping.
type Design struct {
	sys      *System
	Topology *topo.Topology
	Network  *power.MNoC
	// Mapping maps thread → core; identity when no QAP pass ran.
	Mapping mapping.Assignment
}

func (s *System) finish(t *topo.Topology, w power.Weighting) (*Design, error) {
	net, err := power.NewMNoC(s.Cfg, t, w)
	if err != nil {
		return nil, err
	}
	return &Design{sys: s, Topology: t, Network: net, Mapping: mapping.Identity(s.N())}, nil
}

// BroadcastDesign is the base mNoC: one power mode reaching everyone.
func (s *System) BroadcastDesign() (*Design, error) {
	return s.finish(topo.SingleMode(s.N()), power.UniformWeighting(1))
}

// ClusteredDesign maps a conventional clustered topology (Fig. 5a) onto
// two power modes.
func (s *System) ClusteredDesign(clusterSize int) (*Design, error) {
	t, err := topo.Clustered(s.N(), clusterSize)
	if err != nil {
		return nil, err
	}
	return s.finish(t, power.UniformWeighting(2))
}

// DistanceDesign builds the naive distance-based topology (Fig. 5b /
// Section 5.2) with the given nearest-group sizes and design weighting.
func (s *System) DistanceDesign(groupSizes []int, w power.Weighting) (*Design, error) {
	t, err := topo.DistanceBased(s.N(), groupSizes)
	if err != nil {
		return nil, err
	}
	return s.finish(t, w)
}

// CommAwareDesign builds the communication-aware topology of Section
// 4.3 from a profiled traffic matrix: the exact binary-partition sweep
// for 2 modes, the paper's best manual partition for 4.
func (s *System) CommAwareDesign(profile *trace.Matrix, modes int) (*Design, error) {
	var t *topo.Topology
	var err error
	switch modes {
	case 2:
		t, err = topo.CommAware2Mode(profile, s.Cfg.Splitter, "2M_G")
	case 4:
		t, err = topo.BestScoredPartition(profile, s.Cfg.Splitter,
			topo.CandidatePartitions4(s.N()), "4M_G")
	default:
		return nil, fmt.Errorf("core: communication-aware designs support 2 or 4 modes, got %d", modes)
	}
	if err != nil {
		return nil, err
	}
	return s.finish(t, power.SampledWeighting(profile))
}

// QAPOptions tunes WithQAPMapping.
type QAPOptions struct {
	Seed       int64
	Iterations int // 0 = the mapping package default
}

// WithQAPMapping re-derives the design's thread mapping by robust taboo
// search on the given traffic (Section 4.4) and returns a new Design
// sharing the same topology and splitters.
func (d *Design) WithQAPMapping(profile *trace.Matrix, opt QAPOptions) (*Design, error) {
	prob, err := mapping.FromTraffic(profile, d.sys.Cfg.Splitter.Layout)
	if err != nil {
		return nil, err
	}
	asg := prob.Taboo(prob.CenterGreedy(), mapping.TabooOptions{
		Seed: opt.Seed, Iterations: opt.Iterations,
	})
	return &Design{sys: d.sys, Topology: d.Topology, Network: d.Network, Mapping: asg}, nil
}

// WithMapping returns the design with an explicit thread mapping.
func (d *Design) WithMapping(asg mapping.Assignment) (*Design, error) {
	if err := asg.Validate(d.sys.N()); err != nil {
		return nil, err
	}
	return &Design{sys: d.sys, Topology: d.Topology, Network: d.Network, Mapping: asg}, nil
}

// MappedTraffic applies the design's thread mapping to a thread-indexed
// traffic matrix, yielding the core-indexed matrix power evaluation
// uses.
func (d *Design) MappedTraffic(profile *trace.Matrix) (*trace.Matrix, error) {
	return profile.Permute(d.Mapping)
}

// Power evaluates the average power of running the (thread-indexed)
// traffic over a window of cycles under this design.
func (d *Design) Power(profile *trace.Matrix, cycles float64) (power.Breakdown, error) {
	mapped, err := d.MappedTraffic(profile)
	if err != nil {
		return power.Breakdown{}, err
	}
	return d.Network.Evaluate(mapped, cycles)
}

// DriveTable exports the design's runtime control table (Section
// 3.2.2): per-source mode drive powers, per-destination control bits,
// the fabricated splitter ratios, and the thread↔core maps.
func (d *Design) DriveTable() (*drivetable.Table, error) {
	return drivetable.Build(d.Network, d.Mapping)
}

// Benchmarks lists the available workload names in Table 4 order.
func Benchmarks() []string { return workload.Names() }
