package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// DirectivePrefix introduces an mnoclint directive. Two verbs exist:
//
//	//mnoclint:allow <analyzer> <reason...>
//	//mnoclint:hot
//
// An allow directive suppresses findings of one analyzer on its own
// line and the line directly below it. The analyzer name must be one
// of the analyzers in the run, the reason is mandatory (an unexplained
// suppression is itself a diagnostic), and an allow that suppresses
// nothing is reported as stale — suppressions never outlive the
// finding they excused. A hot directive in a function's doc comment
// marks it as a hotalloc root (see callgraph.go; a hot directive not
// attached to a function declaration is a diagnostic).
const DirectivePrefix = "//mnoclint:"

// directiveAnalyzer is the pseudo-analyzer name directive diagnostics
// are reported under. It is reserved: directives cannot suppress it.
const directiveAnalyzer = "mnoclint"

// allowDirective is one parsed //mnoclint:allow comment. Run marks it
// used when it suppresses a finding; a directive still unused at the
// end of a full-suite run is reported as stale.
type allowDirective struct {
	pos      token.Position
	line     int
	analyzer string
	reason   string
	used     bool
}

// suppressions indexes the well-formed allow directives of one file:
// line number -> analyzer name -> directive.
type suppressions map[int]map[string]*allowDirective

// isHotDirective reports whether comment text is a //mnoclint:hot
// root marker (trailing words are tolerated as commentary).
func isHotDirective(text string) bool {
	rest, ok := strings.CutPrefix(text, DirectivePrefix)
	if !ok {
		return false
	}
	verb, _, _ := strings.Cut(rest, " ")
	return verb == "hot"
}

// parseDirectives scans a file's comments for mnoclint directives.
// Well-formed allow directives are returned as suppressions; malformed
// ones (unknown verb, missing analyzer, missing reason, analyzer not
// in the run) are reported as diagnostics under the reserved
// "mnoclint" analyzer name. Hot directives are validated against the
// declarations by BuildModule, not here.
func parseDirectives(fset *token.FileSet, f *ast.File, known map[string]bool, report func(Diagnostic)) suppressions {
	sup := suppressions{}
	bad := func(pos token.Pos, format string, args ...any) {
		report(Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: directiveAnalyzer,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, DirectivePrefix)
			if !ok {
				continue
			}
			verb, args, _ := strings.Cut(rest, " ")
			if verb == "hot" {
				continue
			}
			if verb != "allow" {
				bad(c.Pos(), "unknown directive %q: only %sallow and %shot are recognized", DirectivePrefix+verb, DirectivePrefix, DirectivePrefix)
				continue
			}
			name, reason, _ := strings.Cut(strings.TrimSpace(args), " ")
			reason = strings.TrimSpace(reason)
			if name == "" {
				bad(c.Pos(), "malformed allow directive: missing analyzer name (want %sallow <analyzer> <reason>)", DirectivePrefix)
				continue
			}
			if !known[name] {
				bad(c.Pos(), "allow directive names unknown analyzer %q", name)
				continue
			}
			if reason == "" {
				bad(c.Pos(), "allow directive for %q has no reason: every suppression must say why", name)
				continue
			}
			line := fset.Position(c.Pos()).Line
			if sup[line] == nil {
				sup[line] = map[string]*allowDirective{}
			}
			sup[line][name] = &allowDirective{
				pos:      fset.Position(c.Pos()),
				line:     line,
				analyzer: name,
				reason:   reason,
			}
		}
	}
	return sup
}

// match returns the directive covering a diagnostic from analyzer at
// line — one on the same line or the line directly above — or nil.
func (s suppressions) match(analyzer string, line int) *allowDirective {
	if d := s[line][analyzer]; d != nil {
		return d
	}
	return s[line-1][analyzer]
}

// allows reports whether a diagnostic from analyzer at line is covered
// by a directive on the same line or the line directly above it.
func (s suppressions) allows(analyzer string, line int) bool {
	return s.match(analyzer, line) != nil
}

// directives returns every allow directive of the file in position
// order (for stale-allow reporting).
func (s suppressions) directives() []*allowDirective {
	var out []*allowDirective
	for _, byName := range s {
		for _, d := range byName {
			out = append(out, d)
		}
	}
	return out
}
