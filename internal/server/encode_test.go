// Byte-identity contract for the artisanal encoders (encode.go): every
// hand-rolled response encoding must match encoding/json exactly — the
// go-batsd discipline. The fixtures exercise the float forms
// encoding/json special-cases ('f' vs 'e', exponent trimming), string
// escaping (HTML, control characters, invalid UTF-8, U+2028/29) and
// the loss_model omitempty branch; the fuzz target extends the same
// assertion to arbitrary inputs.
package server

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

// indentJSON renders v exactly as writeJSON's package-encoder path
// does: MarshalIndent two-space plus the Encoder's trailing newline.
func indentJSON(t testing.TB, v any) []byte {
	t.Helper()
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("package encoder failed: %v", err)
	}
	return append(blob, '\n')
}

func encodeFixtures() map[string]appendJSONer {
	return map[string]appendJSONer{
		"solve": &SolveResponse{
			Bench: "fft", Kind: "dist4", QAP: true,
			BreakdownDTO: BreakdownDTO{SourceUW: 123456.789, OEUW: 0.25, ElecUW: 3},
			TotalWatts:   1.23456789, BaseWatts: 5, Normalized: 0.2469,
		},
		"solve-zero": &SolveResponse{},
		"solve-extreme-floats": &SolveResponse{
			Bench: "radix", Kind: "base",
			BreakdownDTO: BreakdownDTO{SourceUW: 1e21, OEUW: 9.999e-7, ElecUW: -1e-9},
			TotalWatts:   math.MaxFloat64, BaseWatts: math.SmallestNonzeroFloat64,
			Normalized: -0,
		},
		"solve-escaped-strings": &SolveResponse{
			Bench: `sp<la&sh>"2"`, Kind: "a\tb\nc\x01d e f",
		},
		"solve-invalid-utf8": &SolveResponse{
			Bench: "bad\xffutf8\xc3(", Kind: "héllo🜚",
		},
		"evaluate": &EvaluateResponse{
			Bench: "water_s", Policy: "comm4", QAP: true, Scale: 2.5,
			TotalWatts: 4.25, BaseWatts: 17, MNoCCycles: 123456, RNoCCycles: 789012,
			Speedup: 6.391,
		},
		"evaluate-default-scale": &EvaluateResponse{
			Bench: "fft", Policy: "base", Scale: 1,
			TotalWatts: 4, BaseWatts: 5, MNoCCycles: 6, RNoCCycles: 7, Speedup: 8,
		},
		"evaluate-worst": &EvaluateResponse{
			Bench: "fft", Policy: "base", Scale: 1, LossModel: "worst",
			TotalWatts: 4, BaseWatts: 5, MNoCCycles: 6, RNoCCycles: 7, Speedup: 8,
		},
		"evaluate-max-cycles": &EvaluateResponse{
			Bench: "lu_c", Policy: "dist4", Scale: 1e20,
			MNoCCycles: math.MaxUint64, RNoCCycles: math.MaxUint64 - 1, Speedup: 1.0000001,
		},
	}
}

func TestArtisanalEncodeMatchesPackage(t *testing.T) {
	for name, v := range encodeFixtures() {
		got, err := v.appendJSON(nil)
		if err != nil {
			t.Errorf("%s: artisanal encoder errored: %v", name, err)
			continue
		}
		want := indentJSON(t, v)
		if string(got)+"\n" != string(want) {
			t.Errorf("%s: artisanal bytes differ from encoding/json:\n got: %q\nwant: %q", name, got, want)
		}
	}
}

// TestArtisanalEncodeRejectsBadFloats pins the error contract: the
// artisanal encoder must refuse exactly the values encoding/json
// refuses, so the writeJSON fallback stays behaviour-identical.
func TestArtisanalEncodeRejectsBadFloats(t *testing.T) {
	for name, f := range map[string]float64{"nan": math.NaN(), "+inf": math.Inf(1), "-inf": math.Inf(-1)} {
		v := &SolveResponse{Bench: "fft", TotalWatts: f}
		if _, err := v.appendJSON(nil); err == nil {
			t.Errorf("%s: artisanal encoder accepted %g", name, f)
		}
		if _, err := json.Marshal(v); err == nil {
			t.Errorf("%s: encoding/json accepted %g — drop the artisanal guard", name, f)
		}
	}
}

// TestWriteJSONFastPath drives the full writeJSON path for a fast-path
// response and a generic one and checks status, content type and body
// bytes against the package encoder.
func TestWriteJSONFastPath(t *testing.T) {
	fast := &EvaluateResponse{Bench: "fft", Policy: "comm4", Scale: 1,
		TotalWatts: 1.5, BaseWatts: 3, MNoCCycles: 10, RNoCCycles: 25, Speedup: 2.5}
	generic := map[string]string{"status": "ok"}
	for name, v := range map[string]any{"fast": fast, "generic": generic} {
		rec := httptest.NewRecorder()
		writeJSON(rec, 200, v)
		if rec.Code != 200 {
			t.Errorf("%s: status %d", name, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: content type %q", name, ct)
		}
		if got, want := rec.Body.String(), string(indentJSON(t, v)); got != want {
			t.Errorf("%s: body drifted:\n got: %q\nwant: %q", name, got, want)
		}
	}
	// Repeat the fast path to exercise pooled-buffer reuse.
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		writeJSON(rec, 200, fast)
		if got, want := rec.Body.String(), string(indentJSON(t, fast)); got != want {
			t.Fatalf("pooled reuse %d: body drifted:\n got: %q\nwant: %q", i, got, want)
		}
	}
}

// TestAppendJSONStringEscaping pins the string escaper against
// encoding/json over a corpus of nasty strings on its own (the full
// responses above cover it only embedded in a struct).
func TestAppendJSONStringEscaping(t *testing.T) {
	cases := []string{
		"", "plain", `quote"back\slash`, "<script>&amp;</script>",
		"tab\tnl\nret\rnull\x00bell\x07", "\x1f\x20\x7f",
		" line para", "héllo wörld", "🜚🜛",
		"bad\xff", "\xc3\x28", "trailing\xc3", strings.Repeat("a&b", 100),
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if got := appendJSONString(nil, s); string(got) != string(want) {
			t.Errorf("escaping %q drifted:\n got: %s\nwant: %s", s, got, want)
		}
	}
}

// FuzzArtisanalEncode asserts byte-identity between the artisanal and
// package encoders on randomly generated responses (wired into `make
// fuzz`). Floats arrive as raw bits so the corpus reaches subnormals,
// extremes and the NaN/Inf rejection branch.
func FuzzArtisanalEncode(f *testing.F) {
	f.Add("fft", "comm4", true, uint64(0x3ff0000000000000), uint64(0), uint64(42), "")
	f.Add(`we"ird<&>`, "bad\xffutf8", false, uint64(0x7fefffffffffffff), uint64(1), uint64(math.MaxUint64), "worst")
	f.Add(" ", "\x00\x01", true, uint64(0x0010000000000000), uint64(0x8000000000000000), uint64(7), "average")
	f.Fuzz(func(t *testing.T, bench, kind string, qap bool, aBits, bBits uint64, cycles uint64, lossModel string) {
		a, b := math.Float64frombits(aBits), math.Float64frombits(bBits)
		for name, v := range map[string]appendJSONer{
			"solve": &SolveResponse{
				Bench: bench, Kind: kind, QAP: qap,
				BreakdownDTO: BreakdownDTO{SourceUW: a, OEUW: b, ElecUW: a * b},
				TotalWatts:   a, BaseWatts: b, Normalized: a + b,
			},
			"evaluate": &EvaluateResponse{
				Bench: bench, Policy: kind, QAP: qap, Scale: b, LossModel: lossModel,
				TotalWatts: a, BaseWatts: b, MNoCCycles: cycles, RNoCCycles: cycles / 2,
				Speedup: a / b,
			},
		} {
			want, wantErr := json.MarshalIndent(v, "", "  ")
			got, gotErr := v.appendJSON(nil)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s: error mismatch: package %v, artisanal %v", name, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if string(got) != string(want) {
				t.Fatalf("%s: bytes differ:\n got: %q\nwant: %q", name, got, want)
			}
		}
	})
}
