// Package base is the sink of the diamond fixture: facts established
// here must reach package top through both left and right.
package base

import "time"

var stamp time.Time

var global *int

// Tick reads the wall clock.
func Tick() { stamp = time.Now() }

// Spawn starts a goroutine.
func Spawn(ch chan int) {
	go func() { ch <- 1 }()
}

// Keep stores p beyond the call.
func Keep(p *int) { global = p }

// Write mutates through p.
func Write(p *int) { *p = 1 }
