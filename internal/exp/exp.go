// Package exp regenerates every table and figure of the paper's
// evaluation (Section 5). Each experiment is a function on a shared
// Context that returns a printable Table; the cmd/mnoc-bench binary and
// the top-level benchmark suite drive them. DESIGN.md §3 maps each
// experiment to the paper artefact it reproduces, and EXPERIMENTS.md
// records paper-vs-measured numbers.
package exp

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"

	"mnoc/internal/mapping"
	"mnoc/internal/power"
	"mnoc/internal/trace"
	"mnoc/internal/workload"
)

// Options sets the scale of an experiment run.
type Options struct {
	// N is the crossbar radix (256 reproduces the paper).
	N int
	// Seed drives every stochastic component.
	Seed int64
	// QAPIters is the taboo-search budget per benchmark.
	QAPIters int
	// Cycles is the power-evaluation window in clock cycles.
	Cycles float64
	// SimAccesses is the per-core access count for performance
	// simulations (Table 1 / Fig 10 runtimes).
	SimAccesses int
}

// Paper returns the full-scale options matching the paper's setup.
func Paper() Options {
	return Options{N: 256, Seed: 1, QAPIters: 2000, Cycles: 1e6, SimAccesses: 1500}
}

// Quick returns reduced-scale options for tests: a radix-64 crossbar
// with short QAP runs. Relative results keep the paper's shape at this
// scale; absolute wattages are still Table 4-calibrated.
func Quick() Options {
	return Options{N: 64, Seed: 1, QAPIters: 400, Cycles: 1e6, SimAccesses: 300}
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.N < 8 {
		return fmt.Errorf("exp: N = %d, want >= 8", o.N)
	}
	if o.Cycles <= 0 || o.SimAccesses <= 0 {
		return fmt.Errorf("exp: non-positive scale in %+v", o)
	}
	return nil
}

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes carries free-form lines printed after the table (heatmaps,
	// caveats, paper reference values).
	Notes []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if len(t.Header) > 0 {
		if err := printRow(t.Header); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if err := printRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintln(w, n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// JSON renders the table as a machine-readable object (used by
// mnoc-bench -json so downstream plotting does not have to scrape the
// aligned-column text).
func (t *Table) JSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header,omitempty"`
		Rows   [][]string `json:"rows,omitempty"`
		Notes  []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Header, t.Rows, t.Notes}, "", "  ")
}

// WriteCSV renders the table as header + rows in CSV (used by
// mnoc-bench -csv so results plot directly in external tools).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.Header) > 0 {
		if err := cw.Write(t.Header); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Context caches the expensive shared artefacts (calibrated traffic,
// QAP mappings, splitter designs) across experiments. All accessors are
// safe for concurrent use; Precompute exploits that to build the
// per-benchmark artefacts in parallel.
type Context struct {
	Opt Options
	Cfg power.Config

	mu       sync.Mutex
	base     *power.MNoC
	benches  []workload.Benchmark
	shapes   map[string]*trace.Matrix      // calibrated, thread-indexed
	mappings map[string]mapping.Assignment // per-benchmark QAP result
	mapped   map[string]*trace.Matrix      // shapes permuted by mappings
	networks map[string]*power.MNoC        // keyed design cache
}

// NewContext builds a context for the given options.
func NewContext(opt Options) (*Context, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	cfg := power.DefaultConfig(opt.N)
	base, err := power.NewBaseMNoC(cfg)
	if err != nil {
		return nil, err
	}
	return &Context{
		Opt:      opt,
		Cfg:      cfg,
		base:     base,
		benches:  workload.All(),
		shapes:   make(map[string]*trace.Matrix),
		mappings: make(map[string]mapping.Assignment),
		mapped:   make(map[string]*trace.Matrix),
		networks: make(map[string]*power.MNoC),
	}, nil
}

// Benchmarks returns the benchmark set in Table 4 order.
func (c *Context) Benchmarks() []workload.Benchmark { return c.benches }

// Base is the single-mode baseline network.
func (c *Context) Base() *power.MNoC { return c.base }

// Shape returns the benchmark's calibrated thread-indexed traffic.
func (c *Context) Shape(name string) (*trace.Matrix, error) {
	c.mu.Lock()
	if m, ok := c.shapes[name]; ok {
		c.mu.Unlock()
		return m, nil
	}
	c.mu.Unlock()
	b, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	shape, err := b.Matrix(c.Opt.N, c.Opt.Seed)
	if err != nil {
		return nil, err
	}
	m, _, err := power.ScaleToTarget(c.base, shape, c.Opt.Cycles, b.PaperBaseWatts)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prior, ok := c.shapes[name]; ok { // another goroutine won the race
		return prior, nil
	}
	c.shapes[name] = m
	return m, nil
}

// QAPMapping returns the benchmark's taboo-search thread mapping
// (computed once per context).
func (c *Context) QAPMapping(name string) (mapping.Assignment, error) {
	c.mu.Lock()
	if a, ok := c.mappings[name]; ok {
		c.mu.Unlock()
		return a, nil
	}
	c.mu.Unlock()
	m, err := c.Shape(name)
	if err != nil {
		return nil, err
	}
	prob, err := mapping.FromTraffic(m, c.Cfg.Splitter.Layout)
	if err != nil {
		return nil, err
	}
	a := prob.Taboo(prob.CenterGreedy(), mapping.TabooOptions{
		Seed: c.Opt.Seed, Iterations: c.Opt.QAPIters,
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	if prior, ok := c.mappings[name]; ok {
		return prior, nil
	}
	c.mappings[name] = a
	return a, nil
}

// Mapped returns the benchmark's calibrated traffic permuted by its QAP
// mapping (core-indexed).
func (c *Context) Mapped(name string) (*trace.Matrix, error) {
	c.mu.Lock()
	if m, ok := c.mapped[name]; ok {
		c.mu.Unlock()
		return m, nil
	}
	c.mu.Unlock()
	shape, err := c.Shape(name)
	if err != nil {
		return nil, err
	}
	asg, err := c.QAPMapping(name)
	if err != nil {
		return nil, err
	}
	m, err := shape.Permute(asg)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prior, ok := c.mapped[name]; ok {
		return prior, nil
	}
	c.mapped[name] = m
	return m, nil
}

// SampledMatrix averages the normalised, QAP-mapped traffic of the given
// benchmarks — the paper's S4/S12 profiling inputs (Section 5.4).
func (c *Context) SampledMatrix(names []string) (*trace.Matrix, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("exp: empty sample set")
	}
	out := trace.NewMatrix(c.Opt.N)
	for _, name := range names {
		m, err := c.Mapped(name)
		if err != nil {
			return nil, err
		}
		if err := out.AddScaled(m.Normalized(), 1/float64(len(names))); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// network caches splitter-designed networks by key.
func (c *Context) network(key string, build func() (*power.MNoC, error)) (*power.MNoC, error) {
	c.mu.Lock()
	if n, ok := c.networks[key]; ok {
		c.mu.Unlock()
		return n, nil
	}
	c.mu.Unlock()
	n, err := build()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prior, ok := c.networks[key]; ok {
		return prior, nil
	}
	c.networks[key] = n
	return n, nil
}

// Precompute builds every benchmark's calibrated traffic and QAP
// mapping with up to `workers` goroutines. The searches are independent
// and deterministic, so parallelism changes wall-clock time only — a
// full paper-scale context drops from minutes to tens of seconds on a
// multicore host.
func (c *Context) Precompute(workers int) error {
	if workers < 1 {
		workers = 1
	}
	names := workload.Names()
	sem := make(chan struct{}, workers)
	errs := make(chan error, len(names))
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if _, err := c.Mapped(name); err != nil {
				errs <- fmt.Errorf("%s: %w", name, err)
			}
		}(name)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	return nil
}

// evaluateWatts runs a network on a (core-indexed) matrix.
func (c *Context) evaluateWatts(net *power.MNoC, m *trace.Matrix) (float64, error) {
	b, err := net.Evaluate(m, c.Opt.Cycles)
	if err != nil {
		return 0, err
	}
	return b.TotalWatts(), nil
}

// f3 formats a float with three decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
