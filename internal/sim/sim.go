// Package sim is the Graphite substitute: a trace-driven multicore
// simulator with in-order cores, private L1/L2 caches, a distributed
// MOSI directory, and a pluggable NoC timing model (package noc). It
// produces the two artefacts the paper extracts from Graphite: an
// end-to-end runtime (for the mNoC vs rNoC performance comparison) and a
// communication packet trace (for the power analyses).
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"mnoc/internal/cache"
	"mnoc/internal/coherence"
	"mnoc/internal/noc"
	"mnoc/internal/telemetry"
	"mnoc/internal/trace"
)

// Config fixes the core and memory-hierarchy parameters (Table 2: in-
// order cores, private 32KB L1D/L1I, 512KB L2, 4-cycle router pipelines
// are in package noc).
type Config struct {
	Cores       int
	L1SizeBytes int
	L1Ways      int
	L2SizeBytes int
	L2Ways      int
	LineBytes   int
	// L1HitCycles/L2HitCycles are access latencies; MemCycles is the
	// DRAM access charged at a block's home node.
	L1HitCycles uint64
	L2HitCycles uint64
	MemCycles   uint64
	// ThinkCycles is the non-memory work between two memory accesses
	// of the in-order core.
	ThinkCycles uint64
	// BroadcastInv enables the Section 7 coherence extension: multi-
	// sharer invalidations ride a single SWMR broadcast instead of
	// per-sharer unicasts.
	BroadcastInv bool
	// Protocol selects the coherence protocol (MOSI default, or MSI
	// for the ablation of the Owned state).
	Protocol coherence.Protocol
	// MaxSendRetries bounds how often a transmission rejected by the
	// network's fault model (noc.DeliveryError) is retried. The failed
	// attempt still occupies the waveguide and burns power; the retry is
	// injected once the NACK is learnt (the would-be arrival cycle) plus
	// RetryBackoffCycles. 0 models a fault-oblivious machine: every
	// failed transmission is immediately a lost packet.
	MaxSendRetries int
	// RetryBackoffCycles is the extra wait before each retry.
	RetryBackoffCycles uint64
}

// DefaultConfig is the paper's Table 2 core model.
func DefaultConfig(cores int) Config {
	return Config{
		Cores:       cores,
		L1SizeBytes: 32 * 1024,
		L1Ways:      4,
		L2SizeBytes: 512 * 1024,
		L2Ways:      8,
		LineBytes:   64,
		L1HitCycles: 1,
		L2HitCycles: 6,
		MemCycles:   100,
		ThinkCycles: 2,

		MaxSendRetries:     3,
		RetryBackoffCycles: 4,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Cores < 2 {
		return fmt.Errorf("sim: %d cores", c.Cores)
	}
	if c.L1HitCycles == 0 || c.L2HitCycles == 0 || c.MemCycles == 0 {
		return fmt.Errorf("sim: zero latency in %+v", c)
	}
	if c.MaxSendRetries < 0 {
		return fmt.Errorf("sim: MaxSendRetries = %d", c.MaxSendRetries)
	}
	return nil
}

// Access is one memory operation of a core's stream.
type Access struct {
	Write bool
	Addr  uint64
}

// packetBufPool recycles packet-trace buffers between simulations. A
// benchmark sweep runs thousands of simulations whose traces are read
// once and dropped; Result.Recycle hands the backing array back so the
// next Run starts with a warmed buffer instead of regrowing one.
var packetBufPool = sync.Pool{
	New: func() any { b := make([]trace.Packet, 0, 4096); return &b },
}

// Result summarises a simulation.
type Result struct {
	RuntimeCycles uint64
	// AvgMemLatency is the mean stall of L2-miss accesses.
	AvgMemLatency float64
	Accesses      uint64
	L2Misses      uint64
	Directory     coherence.Stats
	NetworkName   string
	// Sends counts every network transmission attempt (including retries
	// of NACKed packets); Retries counts the re-attempts among them;
	// NACKs counts attempts the fault model rejected non-fatally;
	// LostPackets counts messages never delivered — NACKed with the retry
	// budget exhausted, or failed fatally (dead device). All four are 0
	// on a fault-free network.
	Sends       uint64
	Retries     uint64
	NACKs       uint64
	LostPackets uint64
	// Trace is the packet log of every network message.
	Trace *trace.Trace
}

// Recycle returns the result's packet buffer to the shared pool and
// detaches the trace. Call it only when the trace is no longer needed
// — the caller must not touch r.Trace (or any slice derived from its
// Packets) afterwards. Recycling is optional; an un-recycled trace is
// simply garbage-collected.
func (r *Result) Recycle() {
	if r == nil || r.Trace == nil {
		return
	}
	pkts := r.Trace.Packets[:0]
	r.Trace = nil
	if cap(pkts) > 0 {
		packetBufPool.Put(&pkts)
	}
}

type core struct {
	id     int
	time   uint64
	next   int // index into its stream
	l1, l2 *cache.Cache
	stream []Access
}

// coreHeap orders cores by current time (ties by id for determinism).
type coreHeap []*core

func (h coreHeap) Len() int { return len(h) }
func (h coreHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].id < h[j].id
}
func (h coreHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *coreHeap) Push(x any)   { *h = append(*h, x.(*core)) }
func (h *coreHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Machine is a configured multicore ready to run access streams.
type Machine struct {
	cfg   Config
	net   noc.Network
	dir   *coherence.Directory
	cores []*core
	// packets accumulates the communication trace.
	packets []trace.Packet
	// heapScratch and groupScratch are per-Run reusable buffers (the
	// event heap and playTransaction's per-stage coalesce-group set).
	heapScratch  coreHeap
	groupScratch []int
	// Reliability counters for the current run (see Result).
	sends, retries, nacks, lost uint64
	// Optional telemetry sinks (SetTelemetry); nil-safe handles make
	// every metric call a no-op when unset.
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
}

// NewMachine builds the multicore over the given network model.
func NewMachine(cfg Config, net noc.Network) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if net.N() != cfg.Cores {
		return nil, fmt.Errorf("sim: network for %d nodes, config for %d cores", net.N(), cfg.Cores)
	}
	dir, err := coherence.New(cfg.Cores, cfg.LineBytes)
	if err != nil {
		return nil, err
	}
	dir.BroadcastInv = cfg.BroadcastInv
	dir.Protocol = cfg.Protocol
	m := &Machine{cfg: cfg, net: net, dir: dir}
	for i := 0; i < cfg.Cores; i++ {
		l1, err := cache.New(cfg.L1SizeBytes, cfg.L1Ways, cfg.LineBytes)
		if err != nil {
			return nil, err
		}
		l2, err := cache.New(cfg.L2SizeBytes, cfg.L2Ways, cfg.LineBytes)
		if err != nil {
			return nil, err
		}
		m.cores = append(m.cores, &core{id: i, l1: l1, l2: l2})
	}
	return m, nil
}

// SetTelemetry attaches metric and span sinks: each Run then bumps the
// sim.* counters (runs, accesses, L2 misses, packets, sends, retries,
// NACKs, lost) and records one span per simulation. Either argument
// may be nil. Not safe to call concurrently with Run.
func (m *Machine) SetTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer) {
	m.reg = reg
	m.tracer = tracer
}

// Run executes one access stream per core to completion and returns the
// runtime and trace. streams[i] drives core i.
//
//mnoclint:hot
func (m *Machine) Run(streams [][]Access) (*Result, error) {
	if len(streams) != m.cfg.Cores {
		return nil, fmt.Errorf("sim: %d streams for %d cores", len(streams), m.cfg.Cores)
	}
	defer m.tracer.StartSpan("sim", "run."+m.net.Name()).
		Attr("cores", strconv.Itoa(m.cfg.Cores)).End()
	m.net.Reset()
	if m.packets == nil {
		m.packets = *packetBufPool.Get().(*[]trace.Packet)
	}
	m.packets = m.packets[:0]
	m.sends, m.retries, m.nacks, m.lost = 0, 0, 0, 0

	h := m.heapScratch[:0]
	for i, c := range m.cores {
		c.time, c.next, c.stream = 0, 0, streams[i]
		if len(c.stream) > 0 {
			h = append(h, c)
		}
	}
	heap.Init(&h)

	var finish uint64
	var missLatencySum float64
	var accesses, misses uint64

	for h.Len() > 0 {
		c := h[0]
		acc := c.stream[c.next]
		start := c.time + m.cfg.ThinkCycles
		end, wasMiss, err := m.access(c, start, acc)
		if err != nil {
			return nil, err
		}
		accesses++
		if wasMiss {
			misses++
			missLatencySum += float64(end - start)
		}
		c.time = end
		c.next++
		if c.next >= len(c.stream) {
			if c.time > finish {
				finish = c.time
			}
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}

	res := &Result{
		RuntimeCycles: finish,
		Accesses:      accesses,
		L2Misses:      misses,
		Directory:     m.dir.Stats,
		NetworkName:   m.net.Name(),
		Sends:         m.sends,
		Retries:       m.retries,
		NACKs:         m.nacks,
		LostPackets:   m.lost,
	}
	m.reg.Counter("sim.runs").Inc()
	m.reg.Counter("sim.accesses").Add(accesses)
	m.reg.Counter("sim.l2_misses").Add(misses)
	m.reg.Counter("sim.packets").Add(uint64(len(m.packets)))
	m.reg.Counter("sim.sends").Add(m.sends)
	m.reg.Counter("sim.retries").Add(m.retries)
	m.reg.Counter("sim.nacks").Add(m.nacks)
	m.reg.Counter("sim.lost").Add(m.lost)
	if misses > 0 {
		res.AvgMemLatency = missLatencySum / float64(misses)
	}
	// Off-critical-path writebacks can be injected after the last core
	// retires; the trace duration must cover them.
	cycles := finish + 1
	for _, p := range m.packets {
		if p.Cycle >= cycles {
			cycles = p.Cycle + 1
		}
	}
	res.Trace = &trace.Trace{N: m.cfg.Cores, Cycles: cycles, Packets: m.packets}
	if err := res.Trace.Validate(); err != nil {
		return nil, fmt.Errorf("sim: generated an invalid trace: %w", err)
	}
	m.packets = nil // ownership moves to the result (see Result.Recycle)
	m.heapScratch = h[:0]
	return res, nil
}

// access runs one memory operation starting at `at` and returns the
// cycle the core can continue, plus whether it was an L2 miss.
func (m *Machine) access(c *core, at uint64, acc Access) (uint64, bool, error) {
	addr := acc.Addr
	// L1.
	if l := c.l1.Lookup(addr); l != nil {
		if !acc.Write || l.State.Writable() {
			return at + m.cfg.L1HitCycles, false, nil
		}
		// Write upgrade needed; fall through to the directory after
		// checking L2 state.
	}
	// L2.
	t := at + m.cfg.L1HitCycles
	if l := c.l2.Lookup(addr); l != nil {
		t += m.cfg.L2HitCycles
		if !acc.Write || l.State.Writable() {
			c.l1.Insert(addr, l.State)
			return t, false, nil
		}
		// Upgrade: directory round trip without data.
		tx, err := m.dir.Write(c.id, addr)
		if err != nil {
			return 0, false, err
		}
		done, err := m.playTransaction(t, tx)
		if err != nil {
			return 0, false, err
		}
		m.applyRemote(addr, tx)
		c.l2.SetState(addr, tx.NewState)
		c.l1.Insert(addr, tx.NewState)
		return done, true, nil
	}
	// L2 miss: full coherence transaction.
	t += m.cfg.L2HitCycles
	var tx coherence.Transaction
	var err error
	if acc.Write {
		tx, err = m.dir.Write(c.id, addr)
	} else {
		tx, err = m.dir.Read(c.id, addr)
	}
	if err != nil {
		return 0, false, err
	}
	done, err := m.playTransaction(t, tx)
	if err != nil {
		return 0, false, err
	}
	m.applyRemote(addr, tx)
	if err := m.fillL2(c, addr, tx.NewState, done); err != nil {
		return 0, false, err
	}
	c.l1.Insert(addr, tx.NewState)
	return done, true, nil
}

// playTransaction times a transaction's messages on the network: stage
// k starts when stage k−1's slowest message has arrived; messages
// marked MemAccess are delayed by the DRAM latency at the home.
func (m *Machine) playTransaction(start uint64, tx coherence.Transaction) (uint64, error) {
	if len(tx.Msgs) == 0 {
		// Fully local transaction (requestor is its own home): charge
		// memory latency only.
		return start + m.cfg.MemCycles, nil
	}
	stageStart := start
	maxStage := 0
	for _, msg := range tx.Msgs {
		if msg.Stage > maxStage {
			maxStage = msg.Stage
		}
	}
	for stage := 0; stage <= maxStage; stage++ {
		stageEnd := stageStart
		// The coalesce-group set is a reusable slice with linear lookup:
		// a stage has at most a handful of broadcast groups, and the
		// scratch keeps this inner loop allocation-free.
		m.groupScratch = m.groupScratch[:0]
		for _, msg := range tx.Msgs {
			if msg.Stage != stage {
				continue
			}
			if msg.Coalesce != 0 {
				if containsInt(m.groupScratch, msg.Coalesce) {
					continue // delivered by the group's broadcast
				}
				m.groupScratch = append(m.groupScratch, msg.Coalesce)
				msg = coalescedRepresentative(tx.Msgs, stage, msg.Coalesce)
			}
			send := stageStart
			if msg.MemAccess {
				send += m.cfg.MemCycles
			}
			arr, err := m.netSend(send, msg.Src, msg.Dst, msg.Flits)
			if err != nil {
				return 0, err
			}
			if arr > stageEnd {
				stageEnd = arr
			}
		}
		stageStart = stageEnd
	}
	return stageStart, nil
}

// netSend injects one message, retrying transmissions the network's
// fault model NACKs (up to Config.MaxSendRetries). Every attempt —
// including failed ones — occupied the waveguide and burnt source
// power, so each is logged in the packet trace; the power analysis then
// charges retries automatically. A message that fails fatally or
// exhausts its retry budget is counted lost and the simulation
// continues (an exhausted real machine would fall back to software
// recovery; modelling that is out of scope), so only structural errors
// propagate.
func (m *Machine) netSend(at uint64, src, dst, flits int) (uint64, error) {
	for attempt := 0; ; attempt++ {
		arr, err := m.net.Send(at, src, dst, flits)
		if err != nil {
			var de *noc.DeliveryError
			if !errors.As(err, &de) {
				return 0, err
			}
			m.sends++
			m.packets = append(m.packets, trace.Packet{
				Cycle: at, Src: int32(src), Dst: int32(dst), Flits: int32(flits),
			})
			if !de.Fatal {
				m.nacks++
			}
			if de.Fatal || attempt >= m.cfg.MaxSendRetries {
				m.lost++
				return arr, nil
			}
			m.retries++
			at = arr + m.cfg.RetryBackoffCycles
			continue
		}
		m.sends++
		m.packets = append(m.packets, trace.Packet{
			Cycle: at, Src: int32(src), Dst: int32(dst), Flits: int32(flits),
		})
		return arr, nil
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// coalescedRepresentative picks the farthest destination of a broadcast
// group: one SWMR transmission at the power mode reaching that node
// covers every nearer group member (Section 7 extension).
func coalescedRepresentative(msgs []coherence.Msg, stage, group int) coherence.Msg {
	var rep coherence.Msg
	best := -1
	for _, msg := range msgs {
		if msg.Stage != stage || msg.Coalesce != group {
			continue
		}
		d := msg.Dst - msg.Src
		if d < 0 {
			d = -d
		}
		if d > best {
			best = d
			rep = msg
		}
	}
	return rep
}

// applyRemote applies a transaction's effects on other cores' caches
// (atomic-directory model: remote state changes are immediate).
func (m *Machine) applyRemote(addr uint64, tx coherence.Transaction) {
	if tx.DowngradeOwner >= 0 {
		o := m.cores[tx.DowngradeOwner]
		o.l1.SetState(addr, tx.DowngradeTo)
		o.l2.SetState(addr, tx.DowngradeTo)
	}
	for _, id := range tx.InvalidateAt {
		r := m.cores[id]
		r.l1.Invalidate(addr)
		r.l2.Invalidate(addr)
	}
}

// fillL2 installs a line in L2 and issues the victim's writeback.
func (m *Machine) fillL2(c *core, addr uint64, st cache.State, at uint64) error {
	victim, had := c.l2.Insert(addr, st)
	if !had {
		return nil
	}
	c.l1.Invalidate(victim.Addr) // keep L1 ⊆ L2
	tx, err := m.dir.Evict(c.id, victim.Addr, victim.State)
	if err != nil {
		return fmt.Errorf("sim: evicting %#x: %w", victim.Addr, err)
	}
	// Writebacks are off the critical path: they use the network (and
	// so add contention) but do not stall the core, so the returned
	// cycle is deliberately unused.
	if _, err := m.playTransaction(at, tx); err != nil {
		return err
	}
	return nil
}
