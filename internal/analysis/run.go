package analysis

import (
	"fmt"
)

// Run applies every analyzer to every package, filters findings
// through the packages' //mnoclint:allow directives, and returns the
// surviving diagnostics sorted by position. Malformed directives are
// returned as diagnostics themselves (analyzer "mnoclint") and cannot
// be suppressed.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var out []Diagnostic
	for _, pkg := range pkgs {
		// Directive index per file, plus malformed-directive findings.
		fileSup := map[string]suppressions{}
		for _, f := range pkg.Files {
			filename := pkg.Fset.Position(f.Package).Filename
			fileSup[filename] = parseDirectives(pkg.Fset, f, known, func(d Diagnostic) {
				out = append(out, d)
			})
		}

		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report:   func(d Diagnostic) { raw = append(raw, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		for _, d := range raw {
			if sup, ok := fileSup[d.Pos.Filename]; ok && sup.allows(d.Analyzer, d.Pos.Line) {
				continue
			}
			out = append(out, d)
		}
	}
	sortDiagnostics(out)
	return out, nil
}
