// Fixtures for the pooluse analyzer: reset-before-Put, use-after-Put
// with the put-and-bail exemption, and interprocedural escape of a
// pooled value through a callee that retains its argument.
package a

import (
	"sink"
	"sync"
)

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

var scratchPool = sync.Pool{New: func() any { s := make([]float64, 8); return &s }}

func grow(b []byte) []byte { return append(b, 1) }

func consume(s []float64) float64 { return s[0] }

func noReset() {
	bp := bufPool.Get().(*[]byte)
	*bp = grow(*bp)
	bufPool.Put(bp) // want `pooluse: value returned to sync.Pool without a reset`
}

func truncateReset() {
	bp := bufPool.Get().(*[]byte)
	buf := grow(*bp)
	*bp = buf[:0]
	bufPool.Put(bp)
}

func overwriteReset() {
	sp := scratchPool.Get().(*[]float64)
	s := *sp
	for i := range s {
		s[i] = 0
	}
	_ = consume(s)
	scratchPool.Put(sp)
}

func useAfterPut() int {
	bp := bufPool.Get().(*[]byte)
	*bp = (*bp)[:0]
	bufPool.Put(bp)
	n := len(*bp) // want `pooluse: use of bp after it was returned to the pool`
	return n
}

func aliasUseAfterPut() {
	sp := scratchPool.Get().(*[]float64)
	s := *sp
	for i := range s {
		s[i] = 0
	}
	scratchPool.Put(sp)
	_ = consume(s) // want `pooluse: use of s after it was returned to the pool`
}

func returnedAfterPut() []byte {
	bp := bufPool.Get().(*[]byte)
	*bp = (*bp)[:0]
	bufPool.Put(bp)
	return *bp // want `pooluse: use of bp after it was returned to the pool`
}

// putAndBail exercises the exemption: the Put on the error path is
// directly followed by a return that does not touch the buffer, so the
// later uses of bp on the happy path are not misattributed to it.
func putAndBail(fail bool) error {
	bp := bufPool.Get().(*[]byte)
	if fail {
		*bp = (*bp)[:0]
		bufPool.Put(bp)
		return errFailed
	}
	*bp = grow(*bp)
	*bp = (*bp)[:0]
	bufPool.Put(bp)
	return nil
}

var errFailed error

func escapesDirect() {
	bp := bufPool.Get().(*[]byte)
	sink.Keep(*bp) // want `pooluse: pooled value escapes via Keep`
	*bp = (*bp)[:0]
	bufPool.Put(bp)
}

// escapesTransitive only reaches the retaining store two calls away;
// the finding depends on the propagated EscapesParam fact.
func escapesTransitive() {
	bp := bufPool.Get().(*[]byte)
	sink.Forward(*bp) // want `pooluse: pooled value escapes via Forward`
	*bp = (*bp)[:0]
	bufPool.Put(bp)
}

func readOnlyCalleeOK() {
	bp := bufPool.Get().(*[]byte)
	_ = sink.Use(*bp)
	*bp = (*bp)[:0]
	bufPool.Put(bp)
}
