package drivetable

import (
	"bytes"
	"testing"

	"mnoc/internal/mapping"
	"mnoc/internal/power"
	"mnoc/internal/topo"
)

// FuzzRead hammers the drive-table decoder: no panics, and anything
// accepted must validate and survive a round trip.
func FuzzRead(f *testing.F) {
	cfg := power.DefaultConfig(8)
	tp, err := topo.DistanceBased(8, []int{4, 3})
	if err != nil {
		f.Fatal(err)
	}
	net, err := power.NewMNoC(cfg, tp, power.UniformWeighting(2))
	if err != nil {
		f.Fatal(err)
	}
	tbl, err := Build(net, mapping.Identity(8))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.Write(&buf); err != nil {
		f.Fatal(err)
	}
	blob := buf.Bytes()
	f.Add(blob)
	f.Add(blob[:16])
	f.Add([]byte(magic))
	mutated := append([]byte(nil), blob...)
	mutated[len(mutated)/2] ^= 0x5A
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tbl.Validate(); err != nil {
			t.Fatalf("Read accepted an invalid table: %v", err)
		}
		var out bytes.Buffer
		if err := tbl.Write(&out); err != nil {
			t.Fatalf("re-encoding failed: %v", err)
		}
		if _, err := Read(&out); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
