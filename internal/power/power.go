// Package power assembles the device, waveguide and splitter models into
// end-to-end NoC power models: the base/power-topology mNoC, the
// clustered c_mNoC, and the ring-resonator rNoC baseline. It evaluates a
// traffic matrix (already permuted by the chosen thread mapping) under a
// power topology and returns the component breakdown the paper reports
// in Figure 10 (source power, O/E + E/O, electrical links and routers,
// ring heating, laser).
//
// Power accounting is flit-based: every flit occupies its source's
// waveguide for one clock cycle, during which the QD LED driver draws
// the mode's electrical power and every receiver reached by that mode
// performs O/E conversion. Average power is therefore
//
//	Σ_flits (per-flit active power · 1 cycle) / window cycles
//
// which makes the model energy proportional, exactly the property the
// paper highlights for mNoC ("applications with higher network
// utilization (e.g., radix) require high power").
package power

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mnoc/internal/device"
	"mnoc/internal/phys"
	"mnoc/internal/splitter"
	"mnoc/internal/telemetry"
	"mnoc/internal/topo"
	"mnoc/internal/trace"
)

// Config bundles the device models of an mNoC-style network.
type Config struct {
	N        int
	Splitter splitter.Params
	QDLED    device.QDLED
	PD       device.Photodetector
	Elec     device.Electrical
}

// DefaultConfig returns the Table 3 configuration for an n-node crossbar.
func DefaultConfig(n int) Config {
	return Config{
		N:        n,
		Splitter: splitter.DefaultParams(n),
		QDLED:    device.DefaultQDLED(),
		PD:       device.DefaultPhotodetector(),
		Elec:     device.DefaultElectrical(),
	}
}

// WithMIOP returns a copy of the config with the photodetector mIOP
// changed and the splitter Pmin re-derived (used by the Fig. 2 sweep).
func (c Config) WithMIOP(miop phys.MicroWatts) Config {
	c.PD.MIOPUW = miop
	c.Splitter = splitter.ParamsFromDevices(c.Splitter.Layout, c.PD,
		device.DefaultChromophore(), 1.0, 0.2)
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("power: N = %d", c.N)
	}
	if c.Splitter.Layout.N != c.N {
		return fmt.Errorf("power: layout for %d nodes, config for %d", c.Splitter.Layout.N, c.N)
	}
	if err := c.Splitter.Validate(); err != nil {
		return err
	}
	if err := c.QDLED.Validate(); err != nil {
		return err
	}
	if err := c.PD.Validate(); err != nil {
		return err
	}
	return c.Elec.Validate()
}

// Breakdown is the Figure 10 component split, in µW. (Scale can turn
// it into an energy split — see EnergyUJ — but the canonical unit of
// the fields is power.)
type Breakdown struct {
	SourceUW     phys.MicroWatts // QD LED (mNoC) or laser-fed modulation is under LaserUW for rNoC
	OEUW         phys.MicroWatts // O/E and E/O conversion
	ElectricalUW phys.MicroWatts // buffers, electrical routers and links
	RingTrimUW   phys.MicroWatts // ring thermal trimming (rNoC only)
	LaserUW      phys.MicroWatts // off-chip laser (rNoC only)
}

// TotalUW sums all components.
func (b Breakdown) TotalUW() phys.MicroWatts {
	return b.SourceUW + b.OEUW + b.ElectricalUW + b.RingTrimUW + b.LaserUW
}

// TotalWatts is TotalUW in watts.
func (b Breakdown) TotalWatts() float64 { return b.TotalUW().Watts() }

// Add returns the component-wise sum.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		SourceUW:     b.SourceUW + o.SourceUW,
		OEUW:         b.OEUW + o.OEUW,
		ElectricalUW: b.ElectricalUW + o.ElectricalUW,
		RingTrimUW:   b.RingTrimUW + o.RingTrimUW,
		LaserUW:      b.LaserUW + o.LaserUW,
	}
}

// Scale returns the breakdown scaled by f (used for energy = power·time).
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{
		SourceUW:     b.SourceUW.Scale(f),
		OEUW:         b.OEUW.Scale(f),
		ElectricalUW: b.ElectricalUW.Scale(f),
		RingTrimUW:   b.RingTrimUW.Scale(f),
		LaserUW:      b.LaserUW.Scale(f),
	}
}

// Weighting selects how per-mode communication weights are chosen when
// sizing splitters (the U/W/S columns of Table 5).
type Weighting struct {
	// Fracs, if non-nil, fixes the same weight vector for every source
	// (e.g. uniform, or the 66%/33% sensitivity points). Must match the
	// topology's mode count and sum to 1.
	Fracs []float64
	// Sample, if non-nil, derives per-source weights from this traffic
	// matrix (the S4/S12 sampled designs). Exactly one of Fracs/Sample
	// must be set.
	Sample *trace.Matrix
}

// UniformWeighting is the "U" design point.
func UniformWeighting(modes int) Weighting {
	return Weighting{Fracs: topo.UniformWeights(modes)}
}

// SampledWeighting is the "S" design point for a profiled matrix.
func SampledWeighting(m *trace.Matrix) Weighting {
	return Weighting{Sample: m}
}

func (w Weighting) weightsFor(t *topo.Topology, src int) ([]float64, error) {
	switch {
	case w.Fracs != nil && w.Sample != nil:
		return nil, fmt.Errorf("power: weighting has both Fracs and Sample")
	case w.Fracs != nil:
		if len(w.Fracs) != t.Modes {
			return nil, fmt.Errorf("power: %d weight fracs for %d modes", len(w.Fracs), t.Modes)
		}
		return w.Fracs, nil
	case w.Sample != nil:
		return t.TrafficModeWeights(w.Sample, src)
	default:
		return nil, fmt.Errorf("power: empty weighting")
	}
}

// MNoC is a fully designed mNoC crossbar: a power topology plus the
// per-source splitter designs that implement it.
type MNoC struct {
	Cfg      Config
	Topology *topo.Topology
	Designs  []*splitter.Design
	// modeReach[src][m] is the number of receivers that detect light in
	// mode m (all destinations with mode <= m), used for O/E power.
	modeReach [][]int
	// weighting is the design-time mode weighting, kept so the design
	// can be re-solved (Resolve) after endpoint failures.
	weighting Weighting
	// tel is the optional metric sink (Instrument): Evaluate then
	// reports total and per-mode power draw. telh caches the resolved
	// metric handles (built lazily on the first instrumented Evaluate,
	// matching the registration timing Instrument documents) so the hot
	// Evaluate path skips the registry's name lookups.
	tel  *telemetry.Registry
	telh atomic.Pointer[telHandles]
}

// telHandles are the pre-resolved metric handles and the per-Evaluate
// mode scratch of one instrumented network. Evaluate may run
// concurrently (the serve path), so the scratch lives in a pool rather
// than on the struct.
type telHandles struct {
	evals   *telemetry.Counter
	watts   *telemetry.Histogram
	mode    []*telemetry.Histogram
	scratch sync.Pool // *[]float64, len == Topology.Modes
}

// Instrument attaches a metric registry: every Evaluate observes the
// power.watts histogram, bumps power.evaluations, and records the
// per-mode source draw in the power.mode<k>.source_uw histograms. A
// nil registry detaches. Not safe to call concurrently with Evaluate.
func (m *MNoC) Instrument(reg *telemetry.Registry) {
	m.tel = reg
	m.telh.Store(nil)
}

// telHandles returns the cached metric handles, resolving them on the
// first instrumented Evaluate. Handle resolution is idempotent (the
// registry returns the same handle per name), so a race between two
// first Evaluates at worst builds the struct twice.
func (m *MNoC) telHandles() *telHandles {
	if h := m.telh.Load(); h != nil {
		return h
	}
	modes := m.Topology.Modes
	h := &telHandles{
		evals: m.tel.Counter("power.evaluations"),
		watts: m.tel.Histogram("power.watts", PowerWattsBuckets...),
		mode:  make([]*telemetry.Histogram, modes),
	}
	h.scratch.New = func() any { s := make([]float64, modes); return &s }
	for mode := range h.mode {
		//mnoclint:allow hotalloc handle construction runs once per MNoC (CAS-published below); every later Evaluate reuses the handles
		h.mode[mode] = m.tel.Histogram(fmt.Sprintf("power.mode%d.source_uw", mode)) //mnoclint:allow metricnames mode count is bounded by the topology (at most a handful per design) and the resulting names are pinned by testdata/golden/metrics_names.txt
	}
	m.telh.CompareAndSwap(nil, h)
	return m.telh.Load()
}

// PowerWattsBuckets are the bucket bounds (watts) of power.watts.
var PowerWattsBuckets = []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32, 64}

// NewMNoC designs the splitters for every source of the topology under
// the given design-time weighting.
func NewMNoC(cfg Config, t *topo.Topology, w Weighting) (*MNoC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if t.N != cfg.N {
		return nil, fmt.Errorf("power: topology for %d nodes, config for %d", t.N, cfg.N)
	}
	m := &MNoC{
		Cfg:       cfg,
		Topology:  t,
		Designs:   make([]*splitter.Design, cfg.N),
		modeReach: make([][]int, cfg.N),
		weighting: w,
	}
	for src := 0; src < cfg.N; src++ {
		weights, err := w.weightsFor(t, src)
		if err != nil {
			return nil, err
		}
		d, err := splitter.Solve(cfg.Splitter, src, t.ModeOf[src], weights)
		if err != nil {
			return nil, fmt.Errorf("power: designing source %d: %w", src, err)
		}
		m.Designs[src] = d

		sizes := t.ModeSizes(src)
		reach := make([]int, t.Modes)
		run := 0
		for mode, sz := range sizes {
			run += sz
			reach[mode] = run
		}
		m.modeReach[src] = reach
	}
	return m, nil
}

// Resolve re-solves every source's splitter design with the non-alive
// endpoints excluded: dead receivers get zero taps, no power is
// budgeted to reach them, and they stop drawing O/E power. This is the
// last-resort recovery action of the graceful-degradation controller —
// after permanent receiver deaths, "more is less" applies in reverse:
// removing destinations shrinks every mode's injected power. The
// topology and the surviving pairs' mode assignments are unchanged, so
// drive tables stay index-compatible.
func (m *MNoC) Resolve(alive []bool) (*MNoC, error) {
	if len(alive) != m.Cfg.N {
		return nil, fmt.Errorf("power: %d alive entries for %d nodes", len(alive), m.Cfg.N)
	}
	excluded := make([]bool, m.Cfg.N)
	all := true
	for i, a := range alive {
		excluded[i] = !a
		if !a {
			all = false
		}
	}
	if all {
		return m, nil
	}
	t := m.Topology
	out := &MNoC{
		Cfg:       m.Cfg,
		Topology:  t,
		Designs:   make([]*splitter.Design, m.Cfg.N),
		modeReach: make([][]int, m.Cfg.N),
		weighting: m.weighting,
	}
	for src := 0; src < m.Cfg.N; src++ {
		if !alive[src] {
			// A dead source keeps its old design: it no longer
			// transmits, so its chain is irrelevant, but keeping it
			// preserves indexing for accounting code.
			out.Designs[src] = m.Designs[src]
			out.modeReach[src] = m.modeReach[src]
			continue
		}
		reachable := 0
		for dst := range alive {
			if dst != src && alive[dst] {
				reachable++
			}
		}
		if reachable == 0 {
			// Nothing left to reach; keep the old chain rather than
			// fail the whole re-plan.
			out.Designs[src] = m.Designs[src]
			out.modeReach[src] = make([]int, t.Modes)
			continue
		}
		weights, err := m.weighting.weightsFor(t, src)
		if err != nil {
			return nil, err
		}
		d, err := splitter.SolveMasked(m.Cfg.Splitter, src, t.ModeOf[src], weights, excluded)
		if err != nil {
			return nil, fmt.Errorf("power: re-solving source %d: %w", src, err)
		}
		out.Designs[src] = d

		reach := make([]int, t.Modes)
		for dst, mode := range t.ModeOf[src] {
			if dst == src || !alive[dst] {
				continue
			}
			for hi := mode; hi < t.Modes; hi++ {
				reach[hi]++
			}
		}
		out.modeReach[src] = reach
	}
	return out, nil
}

// LossModel selects how waveguide insertion loss is charged when a
// design is priced. The paper's accounting (and this package's
// default) charges each destination its own path transmission; the
// optical-crossbar comparison literature instead budgets every
// destination at the source's longest-path loss (Li et al.,
// arXiv:1512.07492), which is pessimistic but topology-comparable.
type LossModel string

const (
	// LossAverage is the per-destination path-loss accounting the
	// splitter solver optimises for (Appendix A).
	LossAverage LossModel = "average"
	// LossWorst charges every destination the longest-path insertion
	// loss of its source's serpentine.
	LossWorst LossModel = "worst"
)

// ParseLossModel maps a wire/flag spelling onto a LossModel. The empty
// string means LossAverage.
func ParseLossModel(s string) (LossModel, error) {
	switch s {
	case "", string(LossAverage):
		return LossAverage, nil
	case string(LossWorst):
		return LossWorst, nil
	}
	return "", fmt.Errorf("power: unknown loss model %q (want %q or %q)", s, LossAverage, LossWorst)
}

// WithLossModel returns the network re-priced under the given loss
// accounting. LossAverage returns the receiver unchanged; LossWorst
// returns a view sharing the topology and fabricated splitter chains
// but with every source's mode powers re-derived at its longest-path
// transmission. The view carries no metric sink — it is an accounting
// overlay, not a new design.
func (m *MNoC) WithLossModel(model LossModel) (*MNoC, error) {
	switch model {
	case "", LossAverage:
		return m, nil
	case LossWorst:
	default:
		return nil, fmt.Errorf("power: unknown loss model %q", model)
	}
	out := &MNoC{
		Cfg:       m.Cfg,
		Topology:  m.Topology,
		Designs:   make([]*splitter.Design, len(m.Designs)),
		modeReach: m.modeReach,
		weighting: m.weighting,
	}
	for src, d := range m.Designs {
		wc, err := splitter.WorstCaseDesign(m.Cfg.Splitter, d, m.Topology.ModeOf[src])
		if err != nil {
			return nil, fmt.Errorf("power: worst-case repricing source %d: %w", src, err)
		}
		out.Designs[src] = wc
	}
	return out, nil
}

// SourceElectricalUW is the QD LED driver power while src transmits
// in the given mode.
func (m *MNoC) SourceElectricalUW(src, mode int) phys.MicroWatts {
	return m.Cfg.QDLED.ElectricalPower(m.Designs[src].ModePowerUW[mode])
}

// Evaluate computes the average power of carrying the traffic matrix mtx
// (flit counts, core-indexed — apply the thread mapping with
// Matrix.Permute first) over a window of `cycles` clock cycles.
//
//mnoclint:hot
func (m *MNoC) Evaluate(mtx *trace.Matrix, cycles float64) (Breakdown, error) {
	if mtx.N != m.Cfg.N {
		return Breakdown{}, fmt.Errorf("power: matrix for %d nodes, network for %d", mtx.N, m.Cfg.N)
	}
	if cycles <= 0 {
		return Breakdown{}, fmt.Errorf("power: window of %g cycles", cycles)
	}
	oePerReceiver := float64(m.Cfg.PD.OEPowerUW())
	var srcSum, oeSum, flits float64
	var th *telHandles
	var modeSrc []float64
	var scratchp *[]float64
	if m.tel != nil {
		th = m.telHandles()
		scratchp = th.scratch.Get().(*[]float64)
		modeSrc = *scratchp
		for i := range modeSrc {
			modeSrc[i] = 0
		}
	}
	for s, row := range mtx.Counts {
		des := m.Designs[s]
		reach := m.modeReach[s]
		for d, v := range row {
			if v == 0 || d == s {
				continue
			}
			mode := m.Topology.ModeOf[s][d]
			src := v * float64(m.Cfg.QDLED.ElectricalPower(des.ModePowerUW[mode]))
			srcSum += src
			if modeSrc != nil {
				modeSrc[mode] += src
			}
			oeSum += v * float64(reach[mode]) * oePerReceiver
			flits += v
		}
	}
	// Electrical buffering at the two endpoints of every flit.
	elecPJ := flits * 2 * m.Cfg.Elec.BufferPJPerFlit
	b := Breakdown{
		SourceUW:     phys.MicroWatts(srcSum / cycles),
		OEUW:         phys.MicroWatts(oeSum / cycles),
		ElectricalUW: pjOverCyclesToUW(elecPJ, cycles),
	}
	if th != nil {
		th.evals.Inc()
		th.watts.Observe(b.TotalWatts())
		for mode, uw := range modeSrc {
			th.mode[mode].Observe(uw / cycles)
		}
		th.scratch.Put(scratchp)
	}
	return b, nil
}

// pjOverCyclesToUW converts a total energy in pJ spent during a window
// of `cycles` 5 GHz clock cycles into average power in µW
// (1 pJ/ns = 1 mW = 1000 µW; one cycle is 1/ClockGHz ns).
func pjOverCyclesToUW(pj, cycles float64) phys.MicroWatts {
	windowNS := cycles / phys.ClockGHz
	return phys.MicroWatts(pj / windowNS * 1000)
}
