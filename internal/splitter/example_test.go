package splitter_test

import (
	"fmt"

	"mnoc/internal/splitter"
)

// ExampleSolve designs the splitters for a small two-mode source and
// verifies the Appendix A structure: mode powers differ by exactly the
// α ratio, and forward propagation delivers each destination its β·Pmin.
func ExampleSolve() {
	p := splitter.DefaultParams(8)
	src := 3
	// Destinations 2 and 4 (the neighbours) in the low mode, everyone
	// else in the high mode.
	modeOf := []int{1, 1, 0, -1, 0, 1, 1, 1}
	d, err := splitter.Solve(p, src, modeOf, []float64{0.7, 0.3})
	if err != nil {
		fmt.Println(err)
		return
	}
	ratio := float64(d.ModePowerUW[1] / d.ModePowerUW[0])
	fmt.Printf("modes: %d\n", len(d.ModePowerUW))
	fmt.Printf("Pmode1/Pmode0 == 1/alpha1: %v\n", aboutEqual(ratio, 1/d.Alphas[1]))

	recv := d.Chain.Received(d.InGuideMode0UW)
	fmt.Printf("low-mode neighbour gets Pmin: %v\n", aboutEqual(float64(recv[2]), float64(p.PminUW)))
	fmt.Printf("high-mode node gets alpha1*Pmin: %v\n", aboutEqual(float64(recv[0]), float64(p.PminUW.Scale(d.Alphas[1]))))
	// Output:
	// modes: 2
	// Pmode1/Pmode0 == 1/alpha1: true
	// low-mode neighbour gets Pmin: true
	// high-mode node gets alpha1*Pmin: true
}

func aboutEqual(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	return diff < 1e-9*(b+1)
}
