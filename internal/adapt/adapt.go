// Package adapt is the online adaptation loop: a long-running
// controller that watches a live or replayed packet stream, detects
// traffic-phase changes and loss drift with windowed estimators, and
// re-solves the power topology in the background — the runtime
// counterpart to the static Fig. 10 phase analysis, in the spirit of
// PROTEUS-style laser-power co-management.
//
// The control loop is window-based. Packets accumulate into a traffic
// matrix per fixed-length cycle window; at each window boundary the
// controller updates an EWMA estimate of the offered traffic, measures
// its total-variation distance from the matrix the active design was
// solved for (drift), and estimates the loss rate against an optional
// fault schedule. A rule engine (hysteresis thresholds, cooldown,
// minimum re-solve gap, rollback-on-regression) decides whether to
// trigger a background re-solve: a QAP re-mapping warm-started from
// the previous assignment plus a sampled-weight splitter re-design.
// Candidate designs are admitted only if the recovery ladder's
// escalation margin bound holds for every traffic-carrying pair, then
// swapped in atomically behind an RCU-style pointer — readers
// (request handlers) load one pointer and never observe a torn design.
//
// Every decision is appended to a canonical text log and published
// through internal/telemetry (the adapt.* metric family). All
// decisions are deterministic functions of (trace, schedule, config):
// in lockstep mode the window boundary joins any pending background
// solve, so two seeded runs produce byte-identical decision logs.
package adapt

import (
	"fmt"

	"mnoc/internal/fault"
	"mnoc/internal/mapping"
	"mnoc/internal/phys"
	"mnoc/internal/power"
	"mnoc/internal/telemetry"
	"mnoc/internal/topo"
	"mnoc/internal/trace"
)

// Metric names of the adapt.* family (docs/TELEMETRY.md; pinned by
// testdata/golden/metrics_names_adapt.txt).
const (
	// MetricWindows counts closed observation windows.
	MetricWindows = "adapt.windows"
	// MetricTriggers counts rule-engine re-solve triggers.
	MetricTriggers = "adapt.triggers"
	// MetricResolves counts completed background re-solves.
	MetricResolves = "adapt.resolves"
	// MetricSwaps counts atomic design swaps.
	MetricSwaps = "adapt.swaps"
	// MetricRollbacks counts rollback-on-regression reversions.
	MetricRollbacks = "adapt.rollbacks"
	// MetricSuppressed counts triggers suppressed by the rule engine
	// (cooldown, re-solve already in flight, minimum gap).
	MetricSuppressed = "adapt.suppressed"
	// MetricRejected counts candidate designs rejected by the
	// escalation margin bound.
	MetricRejected = "adapt.rejected"
	// MetricGeneration is the active design generation.
	MetricGeneration = "adapt.generation"
	// MetricDrift is the last window's traffic drift estimate.
	MetricDrift = "adapt.drift"
	// MetricLossRate is the last window's loss-rate estimate.
	MetricLossRate = "adapt.loss_rate"
	// MetricResolveMS is the background re-solve wall-clock latency.
	MetricResolveMS = "adapt.resolve_ms"
)

// ResolveMSBuckets are the bucket bounds (ms) of adapt.resolve_ms.
var ResolveMSBuckets = []float64{1, 5, 10, 50, 100, 500, 1000, 5000, 10_000}

// Rules is the adaptation rule engine: when to trigger a re-solve and
// when to hold back so the loop degrades gracefully instead of
// thrashing under a fault storm.
type Rules struct {
	// DriftHigh/DriftLow are the hysteresis watermarks on the drift
	// estimate: a re-solve triggers when drift rises above DriftHigh
	// while armed, and the trigger re-arms only once drift falls back
	// below DriftLow (and loss below LossLow).
	DriftHigh, DriftLow float64
	// LossHigh/LossLow are the same watermarks on the windowed
	// loss-rate estimate.
	LossHigh, LossLow float64
	// CooldownWindows suppresses new triggers for this many windows
	// after a swap or rollback.
	CooldownWindows uint64
	// MinResolveGapWindows is the minimum number of windows between
	// consecutive triggers — the maximum re-solve rate.
	MinResolveGapWindows uint64
	// RollbackWindows is how many windows after a swap both the old
	// and new design are priced on the observed traffic before the
	// swap is declared an improvement or rolled back.
	RollbackWindows uint64
	// RegressionFrac rolls the swap back when the new design's power
	// over the watch windows exceeds the old design's by this
	// fraction.
	RegressionFrac float64
	// EscalateModes is the recovery ladder's escalation headroom
	// (RecoveryPolicy.EscalateModes): a candidate design is admitted
	// only if every traffic-carrying pair stays deliverable at
	// nominal+EscalateModes under the current permanent fault losses.
	EscalateModes int
}

// DefaultRules returns watermarks sized above the sampling noise of a
// ~500-packet window (TV noise floor ≈ 0.25 for a 16-node matrix).
func DefaultRules() Rules {
	return Rules{
		DriftHigh:            0.45,
		DriftLow:             0.30,
		LossHigh:             0.05,
		LossLow:              0.01,
		CooldownWindows:      3,
		MinResolveGapWindows: 2,
		RollbackWindows:      2,
		RegressionFrac:       0.02,
		EscalateModes:        2,
	}
}

// Validate checks the rule set.
func (r Rules) Validate() error {
	if r.DriftHigh <= 0 || r.DriftHigh > 2 {
		return fmt.Errorf("adapt: DriftHigh = %v, want in (0, 2]", r.DriftHigh)
	}
	if r.DriftLow < 0 || r.DriftLow > r.DriftHigh {
		return fmt.Errorf("adapt: DriftLow = %v, want in [0, DriftHigh=%v]", r.DriftLow, r.DriftHigh)
	}
	if r.LossHigh <= 0 || r.LossHigh > 1 {
		return fmt.Errorf("adapt: LossHigh = %v, want in (0, 1]", r.LossHigh)
	}
	if r.LossLow < 0 || r.LossLow > r.LossHigh {
		return fmt.Errorf("adapt: LossLow = %v, want in [0, LossHigh=%v]", r.LossLow, r.LossHigh)
	}
	if r.RegressionFrac < 0 {
		return fmt.Errorf("adapt: RegressionFrac = %v", r.RegressionFrac)
	}
	if r.EscalateModes < 0 {
		return fmt.Errorf("adapt: EscalateModes = %d", r.EscalateModes)
	}
	return nil
}

// Config configures a Controller.
type Config struct {
	// N is the node count of the observed stream.
	N int
	// WindowCycles is the observation window length.
	WindowCycles uint64
	// Seed drives the warm-started QAP re-solves (the per-trigger seed
	// is Seed+window so repeated triggers explore fresh tabu walks,
	// deterministically).
	Seed int64
	// QAPIters is the tabu-search budget per re-solve (0 = the
	// mapping package default, 40·N).
	QAPIters int
	// Alpha is the EWMA smoothing factor on the normalized window
	// matrices (0 < Alpha <= 1; default 0.5).
	Alpha float64
	// GuardDB is the chip-wide drive guard band assumed when checking
	// the escalation margin bound and estimating losses.
	GuardDB phys.Decibels
	// Lockstep makes window boundaries join any pending background
	// solve, so swap timing — and with it the decision log — is a
	// deterministic function of the input stream. Replay and tests
	// run lockstep; a live server may poll instead.
	Lockstep bool
	// Rules is the trigger rule engine (zero value = DefaultRules).
	Rules Rules
	// Power is the device configuration (zero value =
	// power.DefaultConfig(N)).
	Power power.Config
	// Topology is the power topology to design over (nil = 2-mode
	// distance-based halves partition, the paper's 2M_D shape).
	Topology *topo.Topology
	// Faults optionally injects a fault schedule: the loss estimator
	// checks each packet's deliverability against the active design's
	// margins, and the escalation margin bound subtracts the
	// permanent path losses active at the window boundary.
	Faults *fault.Schedule
	// Tel is the optional metric sink for the adapt.* family.
	Tel *telemetry.Registry
}

// withDefaults fills zero-valued fields.
func (c Config) withDefaults() Config {
	if c.WindowCycles == 0 {
		c.WindowCycles = 25_000
	}
	if c.Alpha == 0 {
		c.Alpha = 0.5
	}
	if c.Rules == (Rules{}) {
		c.Rules = DefaultRules()
	}
	if c.Power.N == 0 {
		c.Power = power.DefaultConfig(c.N)
	}
	return c
}

// Design is one immutable generation of the adaptive design: the
// solved network, the thread→core assignment, and the normalized
// traffic matrix it was solved for (the drift reference). Readers
// obtain it from Controller.Active with a single atomic pointer load
// and may use it without further synchronisation.
type Design struct {
	// Gen is the swap generation: 0 for the initial design, +1 per
	// swap or rollback.
	Gen uint64
	// Net is the solved network.
	Net *power.MNoC
	// Assignment maps threads to cores (apply with Matrix.Permute
	// before evaluating thread-space traffic on Net).
	Assignment mapping.Assignment
	// Ref is the normalized thread-space traffic matrix the design
	// was solved for; drift is measured against it.
	Ref *trace.Matrix
	// TriggerWindow is the window whose estimate triggered the solve
	// (0 for the initial design).
	TriggerWindow uint64
}

// EvaluatePower prices a thread-space traffic matrix on the design:
// permute by the assignment, then power.MNoC.Evaluate. Pure and safe
// for concurrent use.
func (d *Design) EvaluatePower(m *trace.Matrix, cycles float64) (power.Breakdown, error) {
	mapped, err := m.Permute(d.Assignment)
	if err != nil {
		return power.Breakdown{}, fmt.Errorf("adapt: evaluating gen %d: %w", d.Gen, err)
	}
	b, err := d.Net.Evaluate(mapped, cycles)
	if err != nil {
		return power.Breakdown{}, fmt.Errorf("adapt: evaluating gen %d: %w", d.Gen, err)
	}
	return b, nil
}

// defaultTopology is the 2-mode distance-based halves partition.
func defaultTopology(n int) (*topo.Topology, error) {
	return topo.DistanceBased(n, []int{n / 2, n - 1 - n/2})
}
