package drivetable

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"mnoc/internal/mapping"
	"mnoc/internal/power"
	"mnoc/internal/topo"
)

func builtTable(t *testing.T, n int) (*Table, *power.MNoC, mapping.Assignment) {
	t.Helper()
	cfg := power.DefaultConfig(n)
	tp, err := topo.DistanceBased(n, []int{n / 2, n - 1 - n/2})
	if err != nil {
		t.Fatal(err)
	}
	net, err := power.NewMNoC(cfg, tp, power.UniformWeighting(2))
	if err != nil {
		t.Fatal(err)
	}
	asg := mapping.Identity(n)
	// A non-trivial permutation exercises the thread maps.
	asg[0], asg[3] = asg[3], asg[0]
	asg[1], asg[7] = asg[7], asg[1]
	tbl, err := Build(net, asg)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, net, asg
}

func TestBuildAndValidate(t *testing.T) {
	tbl, _, _ := builtTable(t, 16)
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	if tbl.N != 16 || tbl.Modes != 2 {
		t.Fatalf("shape %d/%d", tbl.N, tbl.Modes)
	}
}

func TestBuildRejectsBadMapping(t *testing.T) {
	cfg := power.DefaultConfig(8)
	net, err := power.NewBaseMNoC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(net, mapping.Assignment{0, 0, 1, 2, 3, 4, 5, 6}); err == nil {
		t.Error("duplicate mapping accepted")
	}
}

func TestLookupConsistentWithDesign(t *testing.T) {
	tbl, net, asg := builtTable(t, 16)
	for srcTh := 0; srcTh < 16; srcTh++ {
		for dstTh := 0; dstTh < 16; dstTh++ {
			if srcTh == dstTh {
				continue
			}
			r, err := tbl.Lookup(srcTh, dstTh)
			if err != nil {
				t.Fatal(err)
			}
			if r.SrcCore != asg[srcTh] || r.DstCore != asg[dstTh] {
				t.Fatalf("route cores (%d,%d), want (%d,%d)", r.SrcCore, r.DstCore, asg[srcTh], asg[dstTh])
			}
			wantMode := net.Topology.ModeOf[r.SrcCore][r.DstCore]
			if r.Mode != wantMode {
				t.Fatalf("mode %d, want %d", r.Mode, wantMode)
			}
			wantDrive := net.Designs[r.SrcCore].ModePowerUW[wantMode]
			if math.Abs(float64(r.DriveUW-wantDrive)) > 1e-9 {
				t.Fatalf("drive %v, want %v", r.DriveUW, wantDrive)
			}
		}
	}
}

func TestLookupRejections(t *testing.T) {
	tbl, _, _ := builtTable(t, 8)
	if _, err := tbl.Lookup(0, 0); err == nil {
		t.Error("self-send accepted")
	}
	if _, err := tbl.Lookup(-1, 2); err == nil {
		t.Error("negative thread accepted")
	}
	if _, err := tbl.Lookup(0, 8); err == nil {
		t.Error("out-of-range thread accepted")
	}
}

func TestRoundTripSerialization(t *testing.T) {
	tbl, _, _ := builtTable(t, 16)
	var buf bytes.Buffer
	if err := tbl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tbl) {
		t.Fatal("round trip mismatch")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("garbage everywhere here"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(bytes.NewReader([]byte(magic))); err == nil {
		t.Error("truncated header accepted")
	}
	// Corrupt a valid blob: break the thread-map inverse property.
	tbl, _, _ := builtTable(t, 8)
	tbl.CoreToThread[0], tbl.CoreToThread[1] = tbl.CoreToThread[1], tbl.CoreToThread[0]
	var buf bytes.Buffer
	if err := tbl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Error("inconsistent thread maps accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mutations := map[string]func(*Table){
		"diagonal":   func(tb *Table) { tb.ModeOf[2][2] = 0 },
		"mode range": func(tb *Table) { tb.ModeOf[1][2] = 9 },
		"tap range":  func(tb *Table) { tb.Taps[1][2] = 1.5 },
		"power order": func(tb *Table) {
			tb.DriveUW[3][1] = tb.DriveUW[3][0] / 2
		},
		"thread map": func(tb *Table) { tb.ThreadToCore[0] = 99 },
	}
	for name, mutate := range mutations {
		tbl, _, _ := builtTable(t, 8)
		mutate(tbl)
		if err := tbl.Validate(); err == nil {
			t.Errorf("%s corruption accepted", name)
		}
	}
}
