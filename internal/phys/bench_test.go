// Benchmark guard for the typed unit system: the defined types must
// compile to exactly the float64 arithmetic they replaced — zero
// allocations, no call overhead. The two benchmark pairs mirror the
// hot loops of the repository (the splitter backward recurrence and
// the power-evaluation accumulation); TestTypedOpsAllocFree turns the
// alloc half of the guarantee into a hard test.

package phys

import (
	"math"
	"testing"
)

// benchN is the recurrence length — one paper-scale serpentine side.
const benchN = 256

var (
	sinkUW  MicroWatts
	sinkF64 float64
)

// typedRecurrence is the splitter backward recurrence written against
// the typed API: incident = req + carry, carry = incident/t.
func typedRecurrence(req []MicroWatts, t Transmission) MicroWatts {
	carry := MicroWatts(0)
	for j := len(req) - 1; j >= 0; j-- {
		incident := req[j] + carry
		carry = incident.Over(t)
	}
	return carry
}

// rawRecurrence is the same loop on raw float64.
func rawRecurrence(req []float64, t float64) float64 {
	carry := 0.0
	for j := len(req) - 1; j >= 0; j-- {
		incident := req[j] + carry
		carry = incident / t
	}
	return carry
}

func typedReq() ([]MicroWatts, Transmission) {
	req := make([]MicroWatts, benchN)
	for j := range req {
		req[j] = MicroWatts(15.7 + float64(j)*0.01)
	}
	return req, Decibels(0.0703125).Transmission()
}

func rawReq() ([]float64, float64) {
	req := make([]float64, benchN)
	for j := range req {
		req[j] = 15.7 + float64(j)*0.01
	}
	return req, LossToTransmission(0.0703125)
}

func BenchmarkSplitterRecurrenceTyped(b *testing.B) {
	req, t := typedReq()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkUW = typedRecurrence(req, t)
	}
}

func BenchmarkSplitterRecurrenceRaw(b *testing.B) {
	req, t := rawReq()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF64 = rawRecurrence(req, t)
	}
}

// typedEval mirrors the power-evaluation accumulation: per-pair drive
// power scaled by traffic, summed into a float64 accumulator exactly
// as MNoC.Evaluate does.
func typedEval(drive []MicroWatts, counts []float64) MicroWatts {
	sum := 0.0
	for i, v := range counts {
		sum += v * float64(drive[i%len(drive)])
	}
	return MicroWatts(sum)
}

func rawEval(drive []float64, counts []float64) float64 {
	sum := 0.0
	for i, v := range counts {
		sum += v * drive[i%len(drive)]
	}
	return sum
}

func evalInputs() ([]MicroWatts, []float64, []float64) {
	drive := make([]MicroWatts, 4)
	raw := make([]float64, 4)
	for m := range drive {
		drive[m] = MicroWatts(100 * math.Pow(2, float64(m)))
		raw[m] = 100 * math.Pow(2, float64(m))
	}
	counts := make([]float64, benchN*benchN/64)
	for i := range counts {
		counts[i] = float64(i % 17)
	}
	return drive, raw, counts
}

func BenchmarkPowerEvalTyped(b *testing.B) {
	drive, _, counts := evalInputs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkUW = typedEval(drive, counts)
	}
}

func BenchmarkPowerEvalRaw(b *testing.B) {
	_, raw, counts := evalInputs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF64 = rawEval(raw, counts)
	}
}

// TestTypedOpsAllocFree asserts the typed inner loops allocate nothing:
// the defined types are free at runtime.
func TestTypedOpsAllocFree(t *testing.T) {
	req, tr := typedReq()
	if allocs := testing.AllocsPerRun(100, func() {
		sinkUW = typedRecurrence(req, tr)
	}); allocs != 0 {
		t.Errorf("typed splitter recurrence allocates %g times per run", allocs)
	}
	drive, _, counts := evalInputs()
	if allocs := testing.AllocsPerRun(100, func() {
		sinkUW = typedEval(drive, counts)
	}); allocs != 0 {
		t.Errorf("typed power evaluation allocates %g times per run", allocs)
	}
	// The conversion methods themselves are also allocation-free.
	if allocs := testing.AllocsPerRun(100, func() {
		sinkF64 = Decibels(1.3).Linear() * float64(MicroWatts(10).Times(Decibels(0.2).Transmission()))
	}); allocs != 0 {
		t.Errorf("typed conversions allocate %g times per run", allocs)
	}
}

// TestTypedRecurrenceMatchesRaw pins bit-identity: the typed loop must
// produce exactly the float64 result of the raw loop.
func TestTypedRecurrenceMatchesRaw(t *testing.T) {
	req, tr := typedReq()
	raw, rt := rawReq()
	if got, want := float64(typedRecurrence(req, tr)), rawRecurrence(raw, rt); got != want {
		t.Fatalf("typed recurrence %g != raw %g", got, want)
	}
	drive, rawDrive, counts := evalInputs()
	if got, want := float64(typedEval(drive, counts)), rawEval(rawDrive, counts); got != want {
		t.Fatalf("typed eval %g != raw %g", got, want)
	}
}
