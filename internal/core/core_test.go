package core

import (
	"math"
	"testing"

	"mnoc/internal/mapping"
	"mnoc/internal/power"
)

func TestNewSystem(t *testing.T) {
	s, err := NewSystem(64)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 64 {
		t.Errorf("N = %d", s.N())
	}
	if _, err := NewSystem(1); err == nil {
		t.Error("1-node system accepted")
	}
}

func TestProfileCalibratesToTable4(t *testing.T) {
	s, err := NewSystem(64)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Profile("barnes", 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.BroadcastDesign()
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Power(m, ProfileCycles)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.TotalWatts()-7.05) > 1e-6 {
		t.Errorf("barnes base power = %v W, want 7.05 (Table 4)", b.TotalWatts())
	}
	if _, err := s.Profile("nope", 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestDesignLadder(t *testing.T) {
	// The paper's headline ordering: broadcast > distance-based >
	// distance+QAP > comm-aware+QAP, on a single benchmark.
	s, err := NewSystem(64)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Profile("water_s", 1)
	if err != nil {
		t.Fatal(err)
	}
	powerOf := func(d *Design) float64 {
		b, err := d.Power(m, ProfileCycles)
		if err != nil {
			t.Fatal(err)
		}
		return b.TotalWatts()
	}

	base, err := s.BroadcastDesign()
	if err != nil {
		t.Fatal(err)
	}
	dist, err := s.DistanceDesign([]int{32, 31}, power.UniformWeighting(2))
	if err != nil {
		t.Fatal(err)
	}
	distT, err := dist.WithQAPMapping(m, QAPOptions{Seed: 1, Iterations: 600})
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := distT.MappedTraffic(m)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := s.CommAwareDesign(mapped, 2)
	if err != nil {
		t.Fatal(err)
	}
	caT, err := ca.WithMapping(distT.Mapping)
	if err != nil {
		t.Fatal(err)
	}

	pBase, pDist, pDistT, pCaT := powerOf(base), powerOf(dist), powerOf(distT), powerOf(caT)
	if !(pDist < pBase) {
		t.Errorf("distance %v not below base %v", pDist, pBase)
	}
	if !(pDistT < pDist) {
		t.Errorf("distance+QAP %v not below distance %v", pDistT, pDist)
	}
	if !(pCaT < pDistT) {
		t.Errorf("comm-aware+QAP %v not below distance+QAP %v", pCaT, pDistT)
	}
}

func TestClusteredDesign(t *testing.T) {
	s, err := NewSystem(64)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.ClusteredDesign(4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Topology.Modes != 2 {
		t.Errorf("modes = %d", d.Topology.Modes)
	}
	if _, err := s.ClusteredDesign(3); err == nil {
		t.Error("bad cluster size accepted")
	}
}

func TestCommAwareDesignRejectsOtherModeCounts(t *testing.T) {
	s, err := NewSystem(32)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Profile("fft", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CommAwareDesign(m, 3); err == nil {
		t.Error("3-mode comm-aware accepted")
	}
	if _, err := s.CommAwareDesign(m, 4); err != nil {
		t.Errorf("4-mode failed: %v", err)
	}
}

func TestWithMappingValidates(t *testing.T) {
	s, err := NewSystem(16)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.BroadcastDesign()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.WithMapping(mapping.Assignment{0, 0, 1}); err == nil {
		t.Error("invalid mapping accepted")
	}
	good := mapping.Identity(16)
	if _, err := d.WithMapping(good); err != nil {
		t.Error(err)
	}
}

func TestBenchmarksList(t *testing.T) {
	if got := Benchmarks(); len(got) != 12 || got[0] != "barnes" {
		t.Errorf("Benchmarks() = %v", got)
	}
}

func TestDriveTableExport(t *testing.T) {
	s, err := NewSystem(16)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Profile("fft", 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.CommAwareDesign(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := d.DriveTable()
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	r, err := tbl.Lookup(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.DriveUW <= 0 {
		t.Errorf("route drive %v", r.DriveUW)
	}
}
