package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

// fakeClock returns a now() that advances a fixed step per call.
func fakeClock(step time.Duration) func() time.Time {
	t0 := time.Unix(1000, 0)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * step)
	}
}

func TestTracerRecordsSpans(t *testing.T) {
	tr := NewTracer(8)
	tr.now = fakeClock(time.Millisecond)
	tr.epoch = time.Unix(1000, 0)

	sp := tr.StartSpan("runner", "entry.table1").Attr("id", "table1")
	d := sp.End()
	if d <= 0 {
		t.Errorf("span duration = %v", d)
	}
	tr.Event("runner", "done", "entries", "1")
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Name != "entry.table1" || spans[0].DurUS != 1000 || spans[0].Attrs["id"] != "table1" {
		t.Errorf("span[0] = %+v", spans[0])
	}
	if spans[1].DurUS != 0 || spans[1].Attrs["entries"] != "1" {
		t.Errorf("event = %+v", spans[1])
	}
}

func TestTracerRingBound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Span{Component: "c", Name: fmt.Sprintf("s%d", i)})
	}
	if tr.Len() != 4 {
		t.Fatalf("ring holds %d spans, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	spans := tr.Spans()
	for i, s := range spans {
		if want := fmt.Sprintf("s%d", 6+i); s.Name != want {
			t.Errorf("span[%d] = %q, want %q (oldest-first order)", i, s.Name, want)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Span{Component: "sim", Name: "run", StartUS: 5, DurUS: 7, Attrs: map[string]string{"net": "mNoC-16"}})
	tr.Record(Span{Component: "fault", Name: "point"})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	var s Span
	if err := json.Unmarshal([]byte(lines[0]), &s); err != nil {
		t.Fatal(err)
	}
	if s.Component != "sim" || s.StartUS != 5 || s.DurUS != 7 || s.Attrs["net"] != "mNoC-16" {
		t.Errorf("line 0 = %+v", s)
	}
}

// chromeTraceFile mirrors the exporter's top-level shape for decoding.
type chromeTraceFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		TS   int64          `json:"ts"`
		Dur  int64          `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Span{Component: "runner", Name: "entry.fig8", StartUS: 10, DurUS: 20, Attrs: map[string]string{"id": "fig8"}})
	tr.Record(Span{Component: "exp", Name: "solve.qap", StartUS: 12, DurUS: 3})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f chromeTraceFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// Two metadata rows (exp, runner sorted) + two complete events.
	if len(f.TraceEvents) != 4 {
		t.Fatalf("got %d events: %+v", len(f.TraceEvents), f.TraceEvents)
	}
	meta := map[string]int{}
	for _, ev := range f.TraceEvents[:2] {
		if ev.Ph != "M" || ev.Name != "thread_name" {
			t.Fatalf("expected metadata event first, got %+v", ev)
		}
		meta[ev.Args["name"].(string)] = ev.TID
	}
	for _, ev := range f.TraceEvents[2:] {
		if ev.Ph != "X" || ev.PID != 1 {
			t.Errorf("complete event = %+v", ev)
		}
		if meta[ev.Cat] != ev.TID {
			t.Errorf("event %q on tid %d, component %q mapped to %d", ev.Name, ev.TID, ev.Cat, meta[ev.Cat])
		}
	}
	if f.TraceEvents[2].TS != 10 || f.TraceEvents[2].Dur != 20 {
		t.Errorf("ts/dur = %d/%d", f.TraceEvents[2].TS, f.TraceEvents[2].Dur)
	}
}
