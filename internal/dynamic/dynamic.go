// Package dynamic explores the runtime adaptations the paper lists as
// future work: online thread migration ("Thread mapping can be achieved
// either offline or online if the workload runs long enough to warrant
// migration", Section 4.4), dynamic power-mode control (Section 7), and
// catnap-style per-source waveguide deactivation (Section 6: "We could
// apply this same method on mNoC by deactivating waveguides per source
// to decrease bandwidth and reduce power").
//
// The controller consumes a packet trace in fixed epochs. After each
// epoch it (a) measures the epoch's power under the current thread
// mapping, (b) proposes a bounded set of thread migrations against the
// observed traffic and the network's true per-mode powers, applying
// them only when the predicted gain clears a threshold, and (c) sizes
// each source's active waveguide count from its utilisation, saving the
// standby power of idle receiver banks. Splitter ratios stay fixed —
// only things a real system can change at runtime (placement, drive
// current, waveguide gating) are adapted.
package dynamic

import (
	"fmt"

	"mnoc/internal/mapping"
	"mnoc/internal/phys"
	"mnoc/internal/power"
	"mnoc/internal/trace"
)

// Policy tunes the online controller.
type Policy struct {
	// EpochCycles is the adaptation interval.
	EpochCycles uint64
	// MinGainFrac is the minimum predicted power gain (fraction of the
	// epoch's power) required to commit a migration batch; it guards
	// against thrashing (default 0.02).
	MinGainFrac float64
	// MaxMigrationsPerEpoch bounds how many threads may move in one
	// epoch (default 8; a migration costs cache warm-up and copying).
	MaxMigrationsPerEpoch int
	// MigrationEnergyUJ is charged per moved thread (state transfer
	// and cache refill energy).
	MigrationEnergyUJ phys.MicroJoules
	// BenefitHorizonEpochs is how many future epochs a committed
	// mapping is assumed to stay useful for when weighing migration
	// energy against predicted savings (default 5).
	BenefitHorizonEpochs int

	// WaveguidesPerSource models the per-source waveguide bundle
	// (256-bit flits over 64-wavelength guides → 4). 0 disables
	// gating.
	WaveguidesPerSource int
	// StandbyUWPerReceiver is the bias power of one listening receiver
	// bank on one waveguide; idle waveguides are gated off, saving it.
	StandbyUWPerReceiver phys.MicroWatts
}

// DefaultPolicy returns a conservative controller configuration. The
// 2M-cycle (0.4 ms) epoch is the shortest interval at which migrating a
// thread's cache state (≈0.5 µJ) can amortise against realistic
// interconnect savings — at shorter epochs the energy gate simply
// rejects every move.
func DefaultPolicy() Policy {
	return Policy{
		EpochCycles:           2_000_000,
		MinGainFrac:           0.02,
		MaxMigrationsPerEpoch: 8,
		MigrationEnergyUJ:     0.5,
		BenefitHorizonEpochs:  5,
		WaveguidesPerSource:   4,
		StandbyUWPerReceiver:  1.0,
	}
}

// Validate checks the policy.
func (p Policy) Validate() error {
	if p.EpochCycles == 0 {
		return fmt.Errorf("dynamic: zero epoch")
	}
	if p.MinGainFrac < 0 || p.MaxMigrationsPerEpoch < 0 {
		return fmt.Errorf("dynamic: negative thresholds in %+v", p)
	}
	if p.WaveguidesPerSource < 0 || p.StandbyUWPerReceiver < 0 {
		return fmt.Errorf("dynamic: negative gating parameters in %+v", p)
	}
	return nil
}

// EpochStat reports one epoch of the run.
type EpochStat struct {
	Epoch int
	Flits float64
	// AdaptiveW is the epoch's average power with the controller's
	// mapping and gating; StaticW keeps the initial mapping and all
	// waveguides on. Both include traffic power; AdaptiveW also
	// includes migration energy amortised over the epoch.
	AdaptiveW float64
	StaticW   float64
	// Migrations is the number of threads moved at the end of the
	// epoch.
	Migrations int
	// ActiveWaveguideFrac is the mean fraction of waveguides kept on.
	ActiveWaveguideFrac float64
}

// Result summarises a controller run.
type Result struct {
	Epochs []EpochStat
	// FinalMapping is the controller's mapping after the last epoch.
	FinalMapping mapping.Assignment
	// TotalAdaptiveW / TotalStaticW are trace-wide average powers.
	TotalAdaptiveW float64
	TotalStaticW   float64
}

// Run drives the controller over a thread-indexed packet trace on the
// given designed network, starting from the initial mapping.
func Run(net *power.MNoC, tr *trace.Trace, initial mapping.Assignment, pol Policy) (*Result, error) {
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	if tr.N != net.Cfg.N {
		return nil, fmt.Errorf("dynamic: trace for %d nodes, network for %d", tr.N, net.Cfg.N)
	}
	if err := initial.Validate(tr.N); err != nil {
		return nil, err
	}
	n := tr.N

	cur := append(mapping.Assignment(nil), initial...)
	res := &Result{}
	var adaptiveE, staticE float64 // energy accumulators (µW·cycles)

	epochs := int((tr.Cycles + pol.EpochCycles - 1) / pol.EpochCycles)
	pkt := 0
	for e := 0; e < epochs; e++ {
		end := uint64(e+1) * pol.EpochCycles
		m := trace.NewMatrix(n)
		for pkt < len(tr.Packets) && tr.Packets[pkt].Cycle < end {
			p := tr.Packets[pkt]
			m.Counts[p.Src][p.Dst] += float64(p.Flits)
			pkt++
		}
		epochCycles := float64(pol.EpochCycles)
		if end > tr.Cycles {
			epochCycles = float64(tr.Cycles - uint64(e)*pol.EpochCycles)
		}

		adaptW, gateFrac, err := epochPower(net, m, cur, pol, epochCycles)
		if err != nil {
			return nil, err
		}
		staticW, _, err := epochPower(net, m, initial, Policy{
			EpochCycles: pol.EpochCycles, WaveguidesPerSource: pol.WaveguidesPerSource,
			// Static reference keeps every waveguide powered.
			StandbyUWPerReceiver: pol.StandbyUWPerReceiver, MinGainFrac: 1,
		}, epochCycles)
		if err != nil {
			return nil, err
		}

		// Adapt for the next epoch using this epoch's observation.
		moves := 0
		if e < epochs-1 && pol.MaxMigrationsPerEpoch > 0 {
			cur, moves, err = improveMapping(net, m, cur, pol, epochCycles)
			if err != nil {
				return nil, err
			}
			// Amortise migration energy over the epoch: µJ → W.
			seconds := epochCycles / (phys.ClockGHz * 1e9)
			adaptW += float64(pol.MigrationEnergyUJ) * float64(moves) * 1e-6 / seconds
		}

		st := EpochStat{
			Epoch: e, Flits: m.Total(),
			AdaptiveW: adaptW, StaticW: staticW,
			Migrations: moves, ActiveWaveguideFrac: gateFrac,
		}
		res.Epochs = append(res.Epochs, st)
		adaptiveE += adaptW * epochCycles
		staticE += staticW * epochCycles
	}
	res.FinalMapping = cur
	if tr.Cycles > 0 {
		res.TotalAdaptiveW = adaptiveE / float64(tr.Cycles)
		res.TotalStaticW = staticE / float64(tr.Cycles)
	}
	return res, nil
}

// epochPower evaluates one epoch's average power (W) under a mapping,
// including waveguide-gating standby power.
func epochPower(net *power.MNoC, m *trace.Matrix, asg mapping.Assignment, pol Policy, cycles float64) (watts, gateFrac float64, err error) {
	mapped, err := m.Permute(asg)
	if err != nil {
		return 0, 0, err
	}
	b, err := net.Evaluate(mapped, cycles)
	if err != nil {
		return 0, 0, err
	}
	w := b.TotalWatts()
	frac := 1.0
	if pol.WaveguidesPerSource > 0 {
		standby, f := gatingStandby(net.Cfg.N, mapped, pol, cycles)
		w += standby / phys.Watt
		frac = f
	}
	return w, frac, nil
}

// gatingStandby computes total receiver standby power (µW) with
// utilisation-driven waveguide gating, and the mean active fraction.
// A source's required waveguide count is ceil(util·W) of its bundle,
// with a minimum of one so it can always transmit; the static reference
// (MinGainFrac >= 1 sentinel, see Run) keeps the full bundle on.
func gatingStandby(n int, mapped *trace.Matrix, pol Policy, cycles float64) (standbyUW, activeFrac float64) {
	w := float64(pol.WaveguidesPerSource)
	perReceiver := float64(pol.StandbyUWPerReceiver)
	totalActive := 0.0
	for s := 0; s < n; s++ {
		active := w
		if pol.MinGainFrac < 1 { // adaptive controller gates waveguides
			util := mapped.RowTotal(s) / cycles // flits per cycle
			need := util * w
			active = float64(int(need) + 1)
			if active > w {
				active = w
			}
		}
		totalActive += active
		standbyUW += active * float64(n-1) * perReceiver
	}
	return standbyUW, totalActive / (float64(n) * w)
}

// improveMapping proposes up to MaxMigrationsPerEpoch thread moves
// (greedy best swaps against the network's mode powers) and commits
// them only if the predicted gain clears MinGainFrac AND the energy
// saved over the benefit horizon exceeds the migration energy — the
// controller never migrates when traffic is too light to pay for it.
func improveMapping(net *power.MNoC, observed *trace.Matrix, cur mapping.Assignment, pol Policy, epochCycles float64) (mapping.Assignment, int, error) {
	n := net.Cfg.N
	cost := make([][]float64, n)
	for c1 := 0; c1 < n; c1++ {
		cost[c1] = make([]float64, n)
		for c2 := 0; c2 < n; c2++ {
			if c1 != c2 {
				cost[c1][c2] = float64(net.SourceElectricalUW(c1, net.Topology.ModeOf[c1][c2]))
			}
		}
	}
	prob, err := mapping.NewProblem(observed.Counts, cost)
	if err != nil {
		return cur, 0, err
	}
	base := prob.Objective(cur)
	if base == 0 {
		return cur, 0, nil
	}

	cand := append(mapping.Assignment(nil), cur...)
	swaps := pol.MaxMigrationsPerEpoch / 2
	moved := 0
	for k := 0; k < swaps; k++ {
		bestI, bestJ, bestGain := -1, -1, 0.0
		before := prob.Objective(cand)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				cand[i], cand[j] = cand[j], cand[i]
				gain := before - prob.Objective(cand)
				cand[i], cand[j] = cand[j], cand[i]
				if gain > bestGain {
					bestI, bestJ, bestGain = i, j, gain
				}
			}
		}
		if bestI < 0 {
			break
		}
		cand[bestI], cand[bestJ] = cand[bestJ], cand[bestI]
		moved += 2
	}
	if moved == 0 {
		return cur, 0, nil
	}
	gainAbs := base - prob.Objective(cand) // µW·flit-cycles over the epoch
	if gainAbs/base < pol.MinGainFrac {
		return cur, 0, nil
	}
	// Energy check: predicted saving per epoch (the objective divided
	// by the epoch length is average µW) across the benefit horizon
	// must cover the migration energy.
	horizon := pol.BenefitHorizonEpochs
	if horizon < 1 {
		horizon = 1
	}
	epochSeconds := epochCycles / (phys.ClockGHz * 1e9)
	savedUJ := gainAbs / epochCycles * epochSeconds * float64(horizon) // µW·s = µJ
	if savedUJ < float64(pol.MigrationEnergyUJ)*float64(moved) {
		return cur, 0, nil
	}
	return cand, moved, nil
}
