package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"time"

	"mnoc/internal/server"
)

// loadCmd drives a running `mnoc serve` with concurrent /v1/solve
// requests and reports throughput plus latency percentiles — the
// acceptance harness for the admission controller, coalescing and the
// artifact cache under concurrency. Any non-200 response counts as a
// failure and makes the command exit 1.
func loadCmd(args []string) {
	fs := flag.NewFlagSet("mnoc load", flag.ExitOnError)
	var (
		url         = fs.String("url", "http://localhost:8080", "base URL of the running server")
		requests    = fs.Int("requests", 1000, "total request count")
		concurrency = fs.Int("concurrency", 32, "in-flight requests")
		bench       = fs.String("bench", "", "single-benchmark mix: send only this workload (default: the built-in three-way mix)")
		kind        = fs.String("kind", "comm4", "design kind for -bench")
		qap         = fs.Bool("qap", false, "request QAP thread mapping for -bench")
		timeoutMS   = fs.Int64("timeout-ms", 60_000, "client-side per-request timeout")
		retries     = fs.Int("retries", 3, "max retries of a 429 response, honouring Retry-After plus jitter (0 = fail immediately)")
		retrySeed   = fs.Int64("retry-seed", 1, "seed for the retry jitter, for reproducible load runs")
	)
	fs.Parse(args)

	opts := server.LoadOptions{
		BaseURL:     *url,
		Requests:    *requests,
		Concurrency: *concurrency,
		Timeout:     time.Duration(*timeoutMS) * time.Millisecond,
		Retries:     *retries,
		RetrySeed:   *retrySeed,
	}
	if *bench != "" {
		opts.Mix = []server.SolveRequest{{Bench: *bench, Kind: *kind, QAP: *qap}}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := server.RunLoad(ctx, opts)
	if err != nil {
		fail("load", err)
	}
	fmt.Println("mnoc load:", res)
	statuses := make([]int, 0, len(res.Statuses))
	for s := range res.Statuses {
		statuses = append(statuses, s)
	}
	sort.Ints(statuses)
	for _, s := range statuses {
		label := fmt.Sprintf("HTTP %d", s)
		if s == 0 {
			label = "transport error"
		}
		fmt.Printf("mnoc load:   %-15s %d\n", label, res.Statuses[s])
	}
	if res.Retries > 0 {
		fmt.Printf("mnoc load:   %-15s %d\n", "retried 429s", res.Retries)
	}
	if res.Failures > 0 {
		fail("load", fmt.Errorf("%d of %d requests failed", res.Failures, res.Requests))
	}
}
