package metricnames_test

import (
	"testing"

	"mnoc/internal/analysis/analysistest"
	"mnoc/internal/analysis/metricnames"
)

func TestMetricNames(t *testing.T) {
	analysistest.Run(t, metricnames.Analyzer, "svc", "telemetry")
}
