package hotalloc_test

import (
	"testing"

	"mnoc/internal/analysis/analysistest"
	"mnoc/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	// kern holds callees whose findings depend on hot-reachability
	// crossing the package boundary from hot.Run.
	analysistest.Run(t, hotalloc.Analyzer, "hot", "kern")
}
