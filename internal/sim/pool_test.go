// Tests for the packet-buffer recycling of the allocation campaign:
// Result.Recycle hands trace buffers back to a shared sync.Pool, so
// concurrent machines hammer the pool here (run under -race by `make
// check`) while every result must stay bit-identical to a fresh run.
package sim

import (
	"sync"
	"testing"

	"mnoc/internal/noc"
	"mnoc/internal/workload"
)

func referenceRun(t *testing.T, cores int, streams [][]Access) *Result {
	t.Helper()
	res, err := newMachine(t, cores).Run(streams)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRecycleReusesPacketBuffer pins the recycling contract on a single
// machine: recycled capacity is reused (no regrowth) and results stay
// identical run over run.
func TestRecycleReusesPacketBuffer(t *testing.T) {
	cores := 8
	b, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	streams, err := StreamsFromBenchmark(b, smallConfig(cores), 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceRun(t, cores, streams)
	for i := 0; i < 5; i++ {
		// A fresh machine per run: caches and directory state warm
		// across Run calls on one machine, so only fresh-machine runs
		// are comparable. The packet pool is what persists.
		res, err := newMachine(t, cores).Run(streams)
		if err != nil {
			t.Fatal(err)
		}
		if res.RuntimeCycles != want.RuntimeCycles {
			t.Fatalf("run %d: %d cycles, want %d", i, res.RuntimeCycles, want.RuntimeCycles)
		}
		if got, exp := len(res.Trace.Packets), len(want.Trace.Packets); got != exp {
			t.Fatalf("run %d: %d packets, want %d", i, got, exp)
		}
		res.Recycle()
		if res.Trace != nil {
			t.Fatal("Recycle left the trace attached")
		}
		res.Recycle() // double-recycle must be a no-op
	}
}

// TestPacketPoolConcurrent runs many machines in parallel, each
// recycling its results, and checks every run against a reference
// computed before the pool was ever touched. Under -race this is the
// buffer-reuse safety net: a recycled buffer leaking into a live trace
// shows up as a data race or a result mismatch.
func TestPacketPoolConcurrent(t *testing.T) {
	cores := 8
	benches := []string{"fft", "barnes", "radix"}
	type job struct {
		streams [][]Access
		want    *Result
	}
	jobs := make([]job, len(benches))
	for i, name := range benches {
		b, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		streams, err := StreamsFromBenchmark(b, smallConfig(cores), 150, 7)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = job{streams: streams, want: referenceRun(t, cores, streams)}
	}

	const workers = 8
	const iters = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		// Machines are built per iteration (warm caches make reruns on
		// one machine incomparable), via error returns: t.Fatal is
		// goroutine-unsafe.
		wg.Add(1)
		go func() {
			defer wg.Done()
			j := jobs[w%len(jobs)]
			for i := 0; i < iters; i++ {
				net, err := noc.NewMNoC(cores)
				if err != nil {
					errs <- err
					return
				}
				m, err := NewMachine(smallConfig(cores), net)
				if err != nil {
					errs <- err
					return
				}
				res, err := m.Run(j.streams)
				if err != nil {
					errs <- err
					return
				}
				if res.RuntimeCycles != j.want.RuntimeCycles ||
					len(res.Trace.Packets) != len(j.want.Trace.Packets) {
					t.Errorf("worker %d run %d: %d cycles/%d packets, want %d/%d",
						w, i, res.RuntimeCycles, len(res.Trace.Packets),
						j.want.RuntimeCycles, len(j.want.Trace.Packets))
				}
				res.Recycle()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
