package ctxthread_test

import (
	"testing"

	"mnoc/internal/analysis/analysistest"
	"mnoc/internal/analysis/ctxthread"
)

func TestCtxThread(t *testing.T) {
	analysistest.Run(t, ctxthread.Analyzer, "svc", "mainpkg")
}
