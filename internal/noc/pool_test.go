// Concurrency test for ReplayObserved's pooled latency scratch (run
// under -race by `make check`): many replays share the pool, and every
// replay's percentiles must match a reference computed before the pool
// existed in any warmed state.
package noc

import (
	"sync"
	"testing"

	"mnoc/internal/trace"
)

func replayFixture(t *testing.T, n, packets int) *trace.Trace {
	t.Helper()
	tr := &trace.Trace{N: n, Cycles: uint64(packets + 100)}
	for i := 0; i < packets; i++ {
		src := i % n
		dst := (i*7 + 1) % n
		if dst == src {
			dst = (dst + 1) % n
		}
		tr.Packets = append(tr.Packets, trace.Packet{
			Cycle: uint64(i), Src: int32(src), Dst: int32(dst), Flits: int32(1 + i%4),
		})
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestReplayLatsPoolConcurrent(t *testing.T) {
	const n = 16
	traces := []*trace.Trace{
		replayFixture(t, n, 50),
		replayFixture(t, n, 500),
		replayFixture(t, n, 2000),
	}
	wants := make([]ReplayStats, len(traces))
	for i, tr := range traces {
		net, err := NewMNoC(n)
		if err != nil {
			t.Fatal(err)
		}
		wants[i], err = Replay(net, tr)
		if err != nil {
			t.Fatal(err)
		}
	}

	const workers = 8
	const iters = 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		net, err := NewMNoC(n) // networks are per-goroutine; only the pool is shared
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, want := traces[w%len(traces)], wants[w%len(traces)]
			for i := 0; i < iters; i++ {
				got, err := Replay(net, tr)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if got != want {
					t.Errorf("worker %d run %d: stats drifted:\n got: %+v\nwant: %+v", w, i, got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestReplayErrorReturnsScratch forces a Send failure mid-replay and
// then replays a clean trace: a scratch leaked (or double-put) on the
// error path would surface as corrupt percentiles here or as a race.
func TestReplayErrorReturnsScratch(t *testing.T) {
	net, err := NewMNoC(8)
	if err != nil {
		t.Fatal(err)
	}
	bad := &trace.Trace{N: 8, Cycles: 10, Packets: []trace.Packet{
		{Cycle: 0, Src: 0, Dst: 1, Flits: 1},
		{Cycle: 1, Src: 2, Dst: 2, Flits: 1}, // self-send: Send rejects it
	}}
	if _, err := Replay(net, bad); err == nil {
		t.Fatal("replay of a self-send trace succeeded")
	}
	good := replayFixture(t, 8, 100)
	want, err := Replay(net, good)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Replay(net, good)
	if err != nil {
		t.Fatal(err)
	}
	if want != again {
		t.Fatalf("stats drifted after error-path recycle:\n got: %+v\nwant: %+v", again, want)
	}
}
