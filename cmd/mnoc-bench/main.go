// Command mnoc-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	mnoc-bench [-exp all|table1|fig2|...] [-scale paper|quick] [-seed N]
//
// At paper scale the full run performs the 256-core QAP searches and
// multicore simulations and takes a few minutes; quick scale (radix 64)
// finishes in seconds and preserves the relative results.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mnoc/internal/exp"
)

func main() {
	var (
		which    = flag.String("exp", "all", "experiment id, 'all' (paper artefacts), 'ext' (extensions), or 'everything' (ids: "+idList()+")")
		scale    = flag.String("scale", "paper", "paper (radix-256) or quick (radix-64)")
		seed     = flag.Int64("seed", 1, "random seed for workloads and heuristics")
		asJSON   = flag.Bool("json", false, "emit results as a JSON array instead of text tables")
		parallel = flag.Int("parallel", 4, "worker goroutines for the per-benchmark precomputation")
		csvDir   = flag.String("csv", "", "also write each experiment's table as <dir>/<id>.csv")
	)
	flag.Parse()

	var opt exp.Options
	switch *scale {
	case "paper":
		opt = exp.Paper()
	case "quick":
		opt = exp.Quick()
	default:
		fmt.Fprintf(os.Stderr, "mnoc-bench: unknown scale %q (want paper or quick)\n", *scale)
		os.Exit(2)
	}
	opt.Seed = *seed

	ctx, err := exp.NewContext(opt)
	if err != nil {
		fail(err)
	}
	if err := ctx.Precompute(*parallel); err != nil {
		fail(err)
	}

	var entries []exp.Entry
	switch *which {
	case "all":
		entries = exp.Registry()
	case "ext":
		entries = exp.Extensions()
	case "everything":
		entries = append(exp.Registry(), exp.Extensions()...)
	default:
		e, err := exp.ByID(*which)
		if err != nil {
			if e, err = exp.ExtensionByID(*which); err != nil {
				fail(err)
			}
		}
		entries = []exp.Entry{e}
	}
	if *asJSON {
		fmt.Println("[")
		for i, e := range entries {
			tbl, err := e.Run(ctx)
			if err != nil {
				fail(fmt.Errorf("%s: %w", e.ID, err))
			}
			blob, err := tbl.JSON()
			if err != nil {
				fail(err)
			}
			sep := ","
			if i == len(entries)-1 {
				sep = ""
			}
			fmt.Printf("%s%s\n", blob, sep)
		}
		fmt.Println("]")
		return
	}
	fmt.Printf("mnoc-bench: scale=%s radix=%d seed=%d experiments=%d\n\n",
		*scale, opt.N, opt.Seed, len(entries))
	for _, e := range entries {
		tbl, err := e.Run(ctx)
		if err != nil {
			fail(fmt.Errorf("%s: %w", e.ID, err))
		}
		if err := tbl.Fprint(os.Stdout); err != nil {
			fail(err)
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, tbl); err != nil {
				fail(err)
			}
		}
	}
}

func writeCSV(dir string, tbl *exp.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, tbl.ID+".csv"))
	if err != nil {
		return err
	}
	if err := tbl.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func idList() string {
	var ids []string
	for _, e := range exp.Registry() {
		ids = append(ids, e.ID)
	}
	for _, e := range exp.Extensions() {
		ids = append(ids, e.ID)
	}
	return strings.Join(ids, ",")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mnoc-bench:", err)
	os.Exit(1)
}
