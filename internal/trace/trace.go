// Package trace holds the communication-trace and traffic-matrix
// representations the power and topology analyses operate on. The paper
// obtains such traces from Graphite runs of SPLASH-2 ("we obtain traces
// of communication packets from all 12 benchmarks"); here they come from
// the synthetic workload generators (package workload) or from the
// multicore simulator (package sim).
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Packet is one network packet: a flit burst from Src to Dst injected at
// Cycle.
type Packet struct {
	Cycle uint64
	Src   int32
	Dst   int32
	Flits int32
}

// Trace is an ordered packet log for an N-node system over Cycles clock
// cycles.
type Trace struct {
	N       int
	Cycles  uint64
	Packets []Packet
}

// Validate checks all packets reference valid, distinct endpoints and
// fall inside the trace duration.
func (t *Trace) Validate() error {
	if t.N < 2 {
		return fmt.Errorf("trace: N = %d, want >= 2", t.N)
	}
	if t.Cycles == 0 {
		return fmt.Errorf("trace: zero duration")
	}
	for i, p := range t.Packets {
		if p.Src < 0 || int(p.Src) >= t.N || p.Dst < 0 || int(p.Dst) >= t.N {
			return fmt.Errorf("trace: packet %d endpoints (%d,%d) out of range [0,%d)", i, p.Src, p.Dst, t.N)
		}
		if p.Src == p.Dst {
			return fmt.Errorf("trace: packet %d is a self-send at node %d", i, p.Src)
		}
		if p.Flits <= 0 {
			return fmt.Errorf("trace: packet %d has %d flits", i, p.Flits)
		}
		if p.Cycle >= t.Cycles {
			return fmt.Errorf("trace: packet %d at cycle %d beyond duration %d", i, p.Cycle, t.Cycles)
		}
	}
	return nil
}

// Matrix builds the N×N traffic matrix (flit counts) of the trace.
func (t *Trace) Matrix() *Matrix {
	m := NewMatrix(t.N)
	for _, p := range t.Packets {
		m.Counts[p.Src][p.Dst] += float64(p.Flits)
	}
	return m
}

// TotalFlits sums the flits of every packet.
func (t *Trace) TotalFlits() float64 {
	sum := 0.0
	for _, p := range t.Packets {
		sum += float64(p.Flits)
	}
	return sum
}

// Matrix is an N×N traffic matrix; Counts[s][d] is the flit volume from
// source s to destination d.
type Matrix struct {
	N      int
	Counts [][]float64
}

// NewMatrix allocates a zeroed N×N matrix.
func NewMatrix(n int) *Matrix {
	rows := make([][]float64, n)
	flat := make([]float64, n*n)
	for i := range rows {
		rows[i], flat = flat[:n], flat[n:]
	}
	return &Matrix{N: n, Counts: rows}
}

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N)
	for i := range m.Counts {
		copy(c.Counts[i], m.Counts[i])
	}
	return c
}

// Total is the sum of all entries.
func (m *Matrix) Total() float64 {
	sum := 0.0
	for _, row := range m.Counts {
		for _, v := range row {
			sum += v
		}
	}
	return sum
}

// RowTotal is the total traffic emitted by source s.
func (m *Matrix) RowTotal(s int) float64 {
	sum := 0.0
	for _, v := range m.Counts[s] {
		sum += v
	}
	return sum
}

// AvgDistance is the traffic-weighted mean |src−dst| index distance —
// the paper reports 102 across the 12 SPLASH benchmarks for naive
// thread-ID numbering (Observation 3).
func (m *Matrix) AvgDistance() float64 {
	var wsum, w float64
	for s, row := range m.Counts {
		for d, v := range row {
			if v == 0 {
				continue
			}
			wsum += v * math.Abs(float64(s-d))
			w += v
		}
	}
	if w == 0 {
		return 0
	}
	return wsum / w
}

// Permute returns the matrix re-indexed by a thread→core assignment:
// out[threadToCore[s]][threadToCore[d]] = m[s][d]. It is how a thread
// mapping is applied before position-dependent power evaluation.
func (m *Matrix) Permute(threadToCore []int) (*Matrix, error) {
	if len(threadToCore) != m.N {
		return nil, fmt.Errorf("trace: mapping of length %d for %d threads", len(threadToCore), m.N)
	}
	seen := make([]bool, m.N)
	for _, c := range threadToCore {
		if c < 0 || c >= m.N {
			return nil, fmt.Errorf("trace: core %d out of range", c)
		}
		if seen[c] {
			return nil, fmt.Errorf("trace: core %d assigned twice", c)
		}
		seen[c] = true
	}
	out := NewMatrix(m.N)
	for s, row := range m.Counts {
		for d, v := range row {
			out.Counts[threadToCore[s]][threadToCore[d]] = v
		}
	}
	return out, nil
}

// AddScaled accumulates scale·other into m (used to average benchmark
// matrices for the S4/S12 sampled-weight designs).
func (m *Matrix) AddScaled(other *Matrix, scale float64) error {
	if other.N != m.N {
		return fmt.Errorf("trace: size mismatch %d vs %d", other.N, m.N)
	}
	for i := range m.Counts {
		for j := range m.Counts[i] {
			m.Counts[i][j] += scale * other.Counts[i][j]
		}
	}
	return nil
}

// Normalized returns a copy scaled so Total() == 1 (zero matrix returns
// a zero copy).
func (m *Matrix) Normalized() *Matrix {
	c := m.Clone()
	tot := c.Total()
	if tot == 0 {
		return c
	}
	for i := range c.Counts {
		for j := range c.Counts[i] {
			c.Counts[i][j] /= tot
		}
	}
	return c
}

// Scale multiplies every entry in place.
func (m *Matrix) Scale(f float64) {
	for i := range m.Counts {
		for j := range m.Counts[i] {
			m.Counts[i][j] *= f
		}
	}
}

const traceMagic = "MNOCTRC1"

// Write serialises the trace in a compact little-endian binary format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	hdr := []uint64{uint64(t.N), t.Cycles, uint64(len(t.Packets))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, p := range t.Packets {
		if err := binary.Write(bw, binary.LittleEndian, p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserialises a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var hdr [3]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("trace: reading header: %w", err)
		}
	}
	const maxPackets = 1 << 30
	if hdr[2] > maxPackets {
		return nil, fmt.Errorf("trace: implausible packet count %d", hdr[2])
	}
	// Grow incrementally rather than trusting the header count with a
	// single allocation: a corrupt header must not allocate gigabytes
	// before the read hits EOF.
	t := &Trace{N: int(hdr[0]), Cycles: hdr[1]}
	for i := uint64(0); i < hdr[2]; i++ {
		var p Packet
		if err := binary.Read(br, binary.LittleEndian, &p); err != nil {
			return nil, fmt.Errorf("trace: reading packet %d: %w", i, err)
		}
		t.Packets = append(t.Packets, p)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
