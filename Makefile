# Tier-1 verification for the mnoc repository (see ROADMAP.md).
# Pure-Go, stdlib-only: no tool downloads, works offline.

GO ?= go

.PHONY: check vet lint lint-json build test race fuzz golden golden-check \
	compare-golden compare-check metrics-golden metrics-check \
	sweep-check bench bench-check bench-baseline

# The tier-1 gate: everything below must pass before merging.
check: vet lint build test race

vet:
	$(GO) vet ./...

# The domain lint suite (cmd/mnoclint, docs/LINT.md): determinism,
# unit-safety, metric-name cardinality, context threading, error
# wrapping, sync.Pool discipline, goroutine cancellation, RCU
# publication and hot-path allocation. Pure stdlib, so it runs offline
# like everything else here.
lint:
	$(GO) run ./cmd/mnoclint ./...

# Machine-readable lint run: every finding plus every in-force allow
# directive with its reason, as a JSON array (CI archives it).
lint-json:
	$(GO) run ./cmd/mnoclint -json ./... > mnoclint.json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the whole tree: cheap enough now that the
# heavy solves are cached, and it catches races in packages that only
# become concurrent indirectly (e.g. exp entries on the runner pool).
race:
	$(GO) test -race ./...

# Regenerate the golden quick-scale benchmark tables. Run after an
# intentional change to experiment output and commit the diff.
golden:
	$(GO) run ./cmd/mnoc bench -scale quick > testdata/golden/bench_quick.txt

# Diff the current quick-scale tables against the checked-in fixture:
# a deterministic end-to-end check that the single mnoc binary still
# reproduces the paper's tables byte-for-byte.
golden-check:
	$(GO) run ./cmd/mnoc bench -scale quick > /tmp/bench_quick.txt
	diff -u testdata/golden/bench_quick.txt /tmp/bench_quick.txt

# Diff the sharded sweep coordinator's merged stdout against the bench
# golden (minus its two header lines): pins the byte-identity contract
# — `mnoc sweep -workers 4` over the work-stealing pool must reproduce
# the single-process `mnoc bench` tables exactly — without booting a
# fleet. The CI fleet-smoke job re-checks this against live backends.
sweep-check:
	$(GO) run ./cmd/mnoc sweep -scale quick -workers 4 > /tmp/sweep_quick.txt
	tail -n +3 testdata/golden/bench_quick.txt | diff -u - /tmp/sweep_quick.txt

# Regenerate the golden worst-vs-average loss comparison table.
compare-golden:
	$(GO) run ./cmd/mnoc compare -loss=worst -scale quick > testdata/golden/compare_worstcase.txt

# Diff the worst-vs-average table against the fixture: pins both loss
# accountings (and their ratio) per design kind.
compare-check:
	$(GO) run ./cmd/mnoc compare -loss=worst -scale quick > /tmp/compare_worstcase.txt
	diff -u testdata/golden/compare_worstcase.txt /tmp/compare_worstcase.txt

# Regenerate the golden metric-name lists: the quick-scale bench set
# and the adaptation-loop set (a replay over the committed phase-shift
# trace registers the full adapt.* family eagerly). Run after
# intentionally adding, renaming or removing a metric and commit the
# diff (docs/TELEMETRY.md documents every name).
metrics-golden:
	$(GO) run ./cmd/mnoc bench -scale quick \
		-metrics-out /tmp/mnoc_metrics.json > /dev/null
	$(GO) run ./cmd/metricnames /tmp/mnoc_metrics.json \
		> testdata/golden/metrics_names.txt
	$(GO) run ./cmd/mnoc replay -trace testdata/adapt/phase_shift.trace \
		-metrics-out /tmp/mnoc_adapt_metrics.json > /dev/null
	$(GO) run ./cmd/metricnames /tmp/mnoc_adapt_metrics.json \
		> testdata/golden/metrics_names_adapt.txt

# Diff the metric names a quick-scale run (and an adaptation replay)
# registers against the checked-in lists: a rename or a
# silently-dropped instrument fails CI instead of breaking downstream
# dashboards.
metrics-check:
	$(GO) run ./cmd/mnoc bench -scale quick \
		-metrics-out /tmp/mnoc_metrics.json > /dev/null
	$(GO) run ./cmd/metricnames /tmp/mnoc_metrics.json \
		> /tmp/mnoc_metrics_names.txt
	diff -u testdata/golden/metrics_names.txt /tmp/mnoc_metrics_names.txt
	$(GO) run ./cmd/mnoc replay -trace testdata/adapt/phase_shift.trace \
		-metrics-out /tmp/mnoc_adapt_metrics.json > /dev/null
	$(GO) run ./cmd/metricnames /tmp/mnoc_adapt_metrics.json \
		> /tmp/mnoc_adapt_metrics_names.txt
	diff -u testdata/golden/metrics_names_adapt.txt /tmp/mnoc_adapt_metrics_names.txt

# Short seeded fuzz passes over the text-format parsers, the telemetry
# exporters, and the artisanal serve-path JSON encoders (byte-identity
# against encoding/json).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDBLinearRoundTrip -fuzztime=10s ./internal/phys
	$(GO) test -run=^$$ -fuzz=FuzzLossTransmissionRoundTrip -fuzztime=10s ./internal/phys
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=10s ./internal/fault
	$(GO) test -run=^$$ -fuzz=FuzzRead -fuzztime=10s ./internal/drivetable
	$(GO) test -run=^$$ -fuzz=FuzzExporters -fuzztime=10s ./internal/telemetry
	$(GO) test -run=^$$ -fuzz=FuzzArtisanalEncode -fuzztime=10s ./internal/server

# ---- Performance baseline (docs/BENCH.md) ----------------------------

# The curated hot-path benchmark set tracked in BENCH_baseline.json:
# splitter solve/recurrence, QAP mapping, multicore-sim inner loop,
# power evaluation, trace replay, and the serve-path JSON
# encode/decode pairs.
BENCH_PATTERN = ^(BenchmarkSplitterDesign|BenchmarkQAPTaboo|BenchmarkPowerEvaluate|BenchmarkNoCReplay|BenchmarkMulticoreSim|BenchmarkSplitterRecurrenceTyped|BenchmarkSplitterRecurrenceRaw|BenchmarkPowerEvalTyped|BenchmarkPowerEvalRaw|BenchmarkJSONPackageEncoding|BenchmarkJSONArtisinalEncoding|BenchmarkWriteJSON|BenchmarkRequestDecode)$$
BENCH_PKGS = . ./internal/phys ./internal/server
BENCH_DATE ?= $(shell date -u +%Y-%m-%d)
BENCH_FILE ?= BENCH_$(BENCH_DATE).json
BENCH_SCALE ?= quick
BENCHTIME ?= 1s

# Measure the curated set and emit the machine-readable BENCH_<date>.json
# (schema: internal/benchjson, docs/BENCH.md).
bench:
	$(GO) test -run='^$$' -bench='$(BENCH_PATTERN)' -benchmem \
		-benchtime=$(BENCHTIME) $(BENCH_PKGS) | tee /tmp/mnoc_bench_raw.txt
	$(GO) run ./cmd/benchjson emit -in /tmp/mnoc_bench_raw.txt \
		-out $(BENCH_FILE) -scale $(BENCH_SCALE) -date $(BENCH_DATE)

# Compare the freshly measured BENCH_<date>.json against the committed
# baseline: exits non-zero on >15% ns/op growth, any allocs/op growth,
# or a baseline benchmark that disappeared. Run `make bench` first (CI
# runs `make bench bench-check`).
bench-check:
	$(GO) run ./cmd/benchjson check \
		-baseline BENCH_baseline.json -current $(BENCH_FILE)

# Refresh the committed baseline after an intentional perf change and
# commit the diff (the review then shows exactly what got slower or
# faster, per benchmark).
bench-baseline: bench
	cp $(BENCH_FILE) BENCH_baseline.json
