// Fault-aware network wrapping: under an attached fault model a Send
// whose destination cannot detect the transmission returns a typed
// *DeliveryError instead of silently succeeding. Detection is the NoC
// layer's job; deciding *why* delivery failed (device death, drifted
// tap, thermal epoch, packet corruption) belongs to the fault model
// (package fault), and recovery to packages sim and dynamic.

package noc

import (
	"fmt"

	"mnoc/internal/phys"
)

// DeliveryError reports a transmission whose destination did not
// receive at least Pmin (or whose packet was corrupted in flight). It
// is retriable: the carrying Send's returned cycle is when the sender
// learns of the failure, so callers can model NACK + retry timing.
type DeliveryError struct {
	Cycle    uint64
	Src, Dst int
	// Reason names the dominant fault (fault.Kind.String() when the
	// model is package fault's Checker).
	Reason string
	// ShortfallDB is how far below the detection threshold the
	// delivered power was; 0 when the failure is not a power shortfall
	// (packet corruption) and +Inf-free: fatal faults report the
	// shortfall as unbounded via Fatal instead.
	ShortfallDB phys.Decibels
	// Fatal marks failures no amount of drive power fixes (dead device,
	// severed guide). Transient marks failures expected to clear on
	// their own (packet corruption, thermal epoch).
	Fatal     bool
	Transient bool
}

// Error implements error.
func (e *DeliveryError) Error() string {
	return fmt.Sprintf("noc: delivery %d->%d failed at cycle %d (%s, shortfall %.2f dB)",
		e.Src, e.Dst, e.Cycle, e.Reason, float64(e.ShortfallDB))
}

// FaultModel decides whether a transmission injected at a cycle is
// detected by its destination. A nil error means delivery succeeds;
// failures must be reported as *DeliveryError so callers can
// distinguish them from structural errors (bad endpoints, bad flits).
type FaultModel interface {
	Deliverable(cycle uint64, src, dst int) error
}

// Faulty decorates a Network with a FaultModel. Timing-wise a failed
// transmission is indistinguishable from a successful one — the light
// was emitted, the waveguide and ejection resources were occupied, the
// power was burnt — so Send always reserves resources on the inner
// model; only the returned error differs. The returned cycle of a
// failed Send is the cycle the tail *would* have arrived, i.e. the
// earliest the source can learn the packet was not acknowledged.
type Faulty struct {
	inner Network
	model FaultModel
}

// WithFaults wraps a network with a fault model. A nil model returns
// the network unchanged.
func WithFaults(net Network, fm FaultModel) Network {
	if fm == nil {
		return net
	}
	return &Faulty{inner: net, model: fm}
}

// N implements Network.
func (f *Faulty) N() int { return f.inner.N() }

// Name implements Network.
func (f *Faulty) Name() string { return f.inner.Name() + "+faults" }

// Reset implements Network. Fault state is owned by the model (faults
// are wall-clock events, not contention state) and is not reset.
func (f *Faulty) Reset() { f.inner.Reset() }

// Send implements Network.
func (f *Faulty) Send(cycle uint64, src, dst, flits int) (uint64, error) {
	arr, err := f.inner.Send(cycle, src, dst, flits)
	if err != nil {
		return 0, err
	}
	if derr := f.model.Deliverable(cycle, src, dst); derr != nil {
		return arr, derr
	}
	return arr, nil
}

// Unwrap exposes the inner network (for callers that need the concrete
// timing model).
func (f *Faulty) Unwrap() Network { return f.inner }
