// Package mut gives the rcupublish fixtures cross-package callees
// whose mutation behaviour only the propagated module facts can see.
package mut

// Plan is a snapshot type published via atomic.Pointer in fixtures.
type Plan struct{ Gen int }

// Bump writes through its argument.
func Bump(p *Plan) { p.Gen++ }

// Touch reaches the write one hop further away; the MutatesParam fact
// must flow through.
func Touch(p *Plan) { Bump(p) }

// Read only reads.
func Read(p *Plan) int { return p.Gen }

// Stamp is a mutating method: the receiver fact (index 0) must be
// consulted at call sites.
func (p *Plan) Stamp(gen int) { p.Gen = gen }
