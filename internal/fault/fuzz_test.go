package fault

import (
	"bytes"
	"testing"
)

// FuzzParse hammers the fault-schedule parser: no panics, and anything
// accepted must validate and round-trip byte-identically (the format is
// canonical).
func FuzzParse(f *testing.F) {
	sched, err := DefaultInjectorConfig(11).Generate(8, 500_000)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sched.Write(&buf); err != nil {
		f.Fatal(err)
	}
	blob := buf.Bytes()
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte(scheduleMagic))
	f.Add([]byte(scheduleMagic + "\nn 2\ncycles 1\ndroprate 0\ndropseed 0\nend\n"))
	f.Add([]byte(scheduleMagic + "\nn 2\ncycles 1\ndroprate NaN\ndropseed 0\nend\n"))
	mutated := append([]byte(nil), blob...)
	mutated[len(mutated)/2] ^= 0x5A
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("Parse accepted an invalid schedule: %v", err)
		}
		var out bytes.Buffer
		if err := s.Write(&out); err != nil {
			t.Fatalf("re-encoding failed: %v", err)
		}
		s2, err := Parse(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		var out2 bytes.Buffer
		if err := s2.Write(&out2); err != nil {
			t.Fatalf("second encoding failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("canonical encoding not stable")
		}
	})
}
