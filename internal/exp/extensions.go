package exp

import (
	"context"
	"fmt"

	"mnoc/internal/coherence"
	"mnoc/internal/dynamic"
	"mnoc/internal/joint"
	"mnoc/internal/mapping"
	"mnoc/internal/noc"
	"mnoc/internal/phys"
	"mnoc/internal/power"
	"mnoc/internal/signal"
	"mnoc/internal/sim"
	"mnoc/internal/splitter"
	"mnoc/internal/stats"
	"mnoc/internal/topo"
	"mnoc/internal/variation"
	"mnoc/internal/workload"
)

// Extensions lists the experiments beyond the paper's evaluation: its
// Section 4.1/6/7 discussion points and future-work items, plus
// ablations of this implementation's own design choices.
func Extensions() []Entry {
	return []Entry{
		{"conventional", "Conventional topology mappings: clustered, tree, hypercube, mesh (Section 4.1)", Conventional},
		{"joint", "Joint mapping + topology optimisation (Sections 4.5/7)", Joint},
		{"dynamic", "Online thread migration and waveguide gating (Sections 4.4/6/7)", Dynamic},
		{"broadcastinv", "Broadcast-assisted coherence invalidation (Section 7)", BroadcastInv},
		{"mwsr", "SWMR vs MWSR crossbar structure (Section 6 related work)", MWSRCompare},
		{"protocol", "Ablation: MOSI vs MSI coherence (value of the Owned state)", ProtocolAblation},
		{"signal", "BER and threshold-circuit margins of a power topology (Section 3.2.2)", Signal},
		{"variation", "Process-variation yield and guard banding (related work [39])", Variation},
		{"designspace", "Design space: mode count x mIOP sweep (Section 7)", DesignSpace},
		{"trimsweep", "rNoC ring-trimming sensitivity, 20-100 uW/ring (Section 5.7)", TrimSweep},
		{"loadsweep", "Load-latency curves: mNoC vs rNoC vs MWSR under uniform traffic", LoadSweep},
		{"summary", "Headline claims computed live (abstract vs measured)", Summary},
		{"alphagrid", "Ablation: splitter α-search resolution (Appendix A)", AlphaGrid},
	}
}

// ExtensionByID finds an extension experiment.
func ExtensionByID(id string) (Entry, error) {
	for _, e := range Extensions() {
		if e.ID == id {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("exp: unknown extension %q", id)
}

// Conventional compares the Section 4.1 conventional-topology mappings
// against the distance-based design the paper recommends instead,
// quantifying the waveguide/power-topology mismatch.
func Conventional(ctx context.Context, c *Context) (*Table, error) {
	n := c.Opt.N
	builders := []struct {
		name  string
		build func() (*topo.Topology, error)
	}{
		{"clustered4", func() (*topo.Topology, error) { return topo.Clustered(n, 4) }},
		{"tree4", func() (*topo.Topology, error) { return topo.Tree(n, 4, 4) }},
		{"hypercube", func() (*topo.Topology, error) { return topo.Hypercube(n) }},
		{"mesh", func() (*topo.Topology, error) {
			r, ccols := meshDims(n)
			return topo.Mesh2D(r, ccols, 4)
		}},
		{"distance4", func() (*topo.Topology, error) { return topo.DistanceBased(n, quarters(n)) }},
	}
	t := &Table{
		ID:     "conventional",
		Title:  "Conventional power-topology mappings (normalized mNoC power, naive mapping)",
		Header: []string{"design", "modes", "hmean normalized power"},
		Notes: []string{
			"paper (4.1): conventional mappings mismatch the waveguide's power profile",
			"(e.g. physically adjacent nodes landing in the high power mode), so the",
			"distance-based design should win",
		},
	}
	for _, b := range builders {
		tp, err := b.build()
		if err != nil {
			return nil, err
		}
		net, err := power.NewMNoC(c.Cfg, tp, power.UniformWeighting(tp.Modes))
		if err != nil {
			return nil, fmt.Errorf("exp: conventional: %s network: %w", b.name, err)
		}
		var vals []float64
		for _, bench := range c.Benchmarks() {
			naive, err := c.Shape(ctx, bench.Name)
			if err != nil {
				return nil, err
			}
			baseW, err := c.evaluateWatts(c.base, naive)
			if err != nil {
				return nil, err
			}
			w, err := c.evaluateWatts(net, naive)
			if err != nil {
				return nil, err
			}
			vals = append(vals, w/baseW)
		}
		h, err := stats.HarmonicMean(vals)
		if err != nil {
			return nil, fmt.Errorf("exp: conventional: %s mean: %w", b.name, err)
		}
		t.Rows = append(t.Rows, []string{b.name, fmt.Sprintf("%d", tp.Modes), f3(h)})
	}
	return t, nil
}

func meshDims(n int) (int, int) {
	r := 1
	for r*r < n {
		r *= 2
	}
	for n%r != 0 {
		r /= 2
	}
	return r, n / r
}

// Joint evaluates the joint mapping+topology optimisation against the
// paper's sequential pipeline for both topology families.
func Joint(ctx context.Context, c *Context) (*Table, error) {
	t := &Table{
		ID:     "joint",
		Title:  "Joint optimisation vs sequential pipeline (normalized mNoC power)",
		Header: []string{"benchmark", "dist seq", "dist joint", "comm seq", "comm joint"},
		Notes: []string{
			"dist = fixed 2-mode distance topology (mapping re-solved against its mode powers);",
			"comm = adaptive comm-aware topology (sequential is already near a fixed point)",
		},
	}
	// A representative subset keeps the experiment affordable.
	for _, name := range []string{"barnes", "ocean_c", "water_s", "cholesky"} {
		naive, err := c.Shape(ctx, name)
		if err != nil {
			return nil, err
		}
		baseW, err := c.evaluateWatts(c.base, naive)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for _, fam := range []joint.Family{joint.Distance, joint.CommAware} {
			res, err := joint.Optimize(c.Cfg, naive, joint.Options{
				Family: fam, Modes: 2, Rounds: 3,
				QAPIters: c.Opt.QAPIters / 2, Seed: c.Opt.Seed, Cycles: c.Opt.Cycles,
			})
			if err != nil {
				return nil, fmt.Errorf("exp: joint family-%d optimisation on %s: %w", fam, name, err)
			}
			seq := res.PowerTrailW[0]
			best := seq
			for _, w := range res.PowerTrailW {
				if w < best {
					best = w
				}
			}
			row = append(row, f3(seq/baseW), f3(best/baseW))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Dynamic runs the online controller on a phased workload and reports
// adaptive vs static power per phase boundary.
func Dynamic(ctx context.Context, c *Context) (*Table, error) {
	n := c.Opt.N
	tr, err := workload.PhasedTrace(n, []workload.Phase{
		{Bench: "ocean_c", Cycles: 12_000_000, Flits: 300_000},
		{Bench: "fft", Cycles: 12_000_000, Flits: 300_000},
		{Bench: "barnes", Cycles: 12_000_000, Flits: 300_000},
	}, c.Opt.Seed)
	if err != nil {
		return nil, fmt.Errorf("exp: dynamic: phased trace: %w", err)
	}
	for i := range tr.Packets {
		tr.Packets[i].Flits *= 16 // cache-line bursts
	}
	tp, err := topo.DistanceBased(n, halves(n))
	if err != nil {
		return nil, fmt.Errorf("exp: dynamic: topology: %w", err)
	}
	net, err := power.NewMNoC(c.Cfg, tp, power.UniformWeighting(2))
	if err != nil {
		return nil, fmt.Errorf("exp: dynamic: network: %w", err)
	}
	res, err := dynamic.Run(net, tr, mapping.Identity(n), dynamic.DefaultPolicy())
	if err != nil {
		return nil, fmt.Errorf("exp: dynamic: controller run: %w", err)
	}
	t := &Table{
		ID:     "dynamic",
		Title:  "Online migration + waveguide gating on a phased workload",
		Header: []string{"epoch", "adaptive(W)", "static(W)", "migrations", "active waveguides"},
	}
	for _, e := range res.Epochs {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", e.Epoch), f3(e.AdaptiveW), f3(e.StaticW),
			fmt.Sprintf("%d", e.Migrations), f2(e.ActiveWaveguideFrac),
		})
	}
	t.Rows = append(t.Rows, []string{"total", f3(res.TotalAdaptiveW), f3(res.TotalStaticW), "", ""})
	t.Notes = []string{
		"phases: ocean_c -> fft -> barnes; static keeps the initial mapping and full",
		"waveguide bundles; adaptive migrates threads (energy-gated) and gates idle guides",
	}
	return t, nil
}

// BroadcastInv measures the Section 7 coherence extension: network
// packets and runtime with unicast vs broadcast invalidations.
func BroadcastInv(ctx context.Context, c *Context) (*Table, error) {
	n := c.Opt.N
	t := &Table{
		ID:     "broadcastinv",
		Title:  "Broadcast-assisted invalidation (multicore simulation)",
		Header: []string{"benchmark", "packets uni", "packets bc", "runtime uni", "runtime bc", "bc invs"},
	}
	for _, name := range []string{"ocean_c", "fft", "water_ns"} {
		b, err := workload.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("exp: broadcastinv: benchmark %s: %w", name, err)
		}
		cfg := sim.DefaultConfig(n)
		streams, err := sim.StreamsFromBenchmark(b, cfg, c.Opt.SimAccesses, c.Opt.Seed)
		if err != nil {
			return nil, fmt.Errorf("exp: broadcastinv: streams for %s: %w", name, err)
		}
		run := func(broadcast bool) (*sim.Result, error) {
			cfg := sim.DefaultConfig(n)
			cfg.BroadcastInv = broadcast
			net, err := noc.NewMNoC(n)
			if err != nil {
				return nil, err
			}
			m, err := sim.NewMachine(cfg, net)
			if err != nil {
				return nil, err
			}
			m.SetTelemetry(c.reg, c.tracer)
			return m.Run(streams)
		}
		uni, err := run(false)
		if err != nil {
			return nil, err
		}
		bc, err := run(true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", len(uni.Trace.Packets)),
			fmt.Sprintf("%d", len(bc.Trace.Packets)),
			fmt.Sprintf("%d", uni.RuntimeCycles),
			fmt.Sprintf("%d", bc.RuntimeCycles),
			fmt.Sprintf("%d", bc.Directory.BroadcastInvs),
		})
	}
	t.Notes = []string{
		"SWMR sources broadcast physically; coalescing multi-sharer invalidations",
		"removes packets without protocol changes (paper Section 7 future work)",
	}
	return t, nil
}

// MWSRCompare contrasts the paper's SWMR crossbar (with and without
// power topologies) against a Corona-style MWSR crossbar built from the
// same mNoC devices. It reproduces the tradeoff behind the Section 6
// discussion: point-to-point (MWSR) optics need the least source power,
// but pay token-arbitration latency on every packet; power topologies
// recover much of the gap while keeping SWMR's latency.
func MWSRCompare(ctx context.Context, c *Context) (*Table, error) {
	n := c.Opt.N
	mwsr, err := power.NewMWSRNoC(c.Cfg)
	if err != nil {
		return nil, fmt.Errorf("exp: mwsr: network model: %w", err)
	}
	pt, err := c.bestPTNetwork(ctx)
	if err != nil {
		return nil, err
	}
	var vSWMR, vPT, vMWSR []float64
	for _, b := range c.Benchmarks() {
		naive, err := c.Shape(ctx, b.Name)
		if err != nil {
			return nil, err
		}
		mapped, err := c.Mapped(ctx, b.Name)
		if err != nil {
			return nil, err
		}
		baseW, err := c.evaluateWatts(c.base, naive)
		if err != nil {
			return nil, err
		}
		ptB, err := pt.Evaluate(mapped, c.Opt.Cycles)
		if err != nil {
			return nil, fmt.Errorf("exp: mwsr: PT network on %s: %w", b.Name, err)
		}
		mwB, err := mwsr.Evaluate(mapped, c.Opt.Cycles)
		if err != nil {
			return nil, fmt.Errorf("exp: mwsr: MWSR network on %s: %w", b.Name, err)
		}
		vSWMR = append(vSWMR, 1.0)
		vPT = append(vPT, ptB.TotalWatts()/baseW)
		vMWSR = append(vMWSR, mwB.TotalWatts()/baseW)
	}
	hPT, err := stats.HarmonicMean(vPT)
	if err != nil {
		return nil, fmt.Errorf("exp: mwsr: PT mean: %w", err)
	}
	hMW, err := stats.HarmonicMean(vMWSR)
	if err != nil {
		return nil, fmt.Errorf("exp: mwsr: MWSR mean: %w", err)
	}

	// Latency comparison on one representative trace.
	b, err := workload.ByName("fft")
	if err != nil {
		return nil, fmt.Errorf("exp: mwsr: latency benchmark: %w", err)
	}
	tr, err := b.Trace(n, 100_000, 20_000, c.Opt.Seed)
	if err != nil {
		return nil, fmt.Errorf("exp: mwsr: latency trace: %w", err)
	}
	sw, err := noc.NewMNoC(n)
	if err != nil {
		return nil, fmt.Errorf("exp: mwsr: SWMR network: %w", err)
	}
	mw, err := noc.NewMWSR(n)
	if err != nil {
		return nil, fmt.Errorf("exp: mwsr: MWSR network: %w", err)
	}
	swStats, err := noc.ReplayObserved(sw, tr, c.reg)
	if err != nil {
		return nil, fmt.Errorf("exp: mwsr: SWMR replay: %w", err)
	}
	mwStats, err := noc.ReplayObserved(mw, tr, c.reg)
	if err != nil {
		return nil, fmt.Errorf("exp: mwsr: MWSR replay: %w", err)
	}

	return &Table{
		ID:     "mwsr",
		Title:  "SWMR vs MWSR crossbar structure (mNoC devices)",
		Header: []string{"design", "hmean normalized power", "avg packet latency (fft, cycles)"},
		Rows: [][]string{
			{"SWMR broadcast (1M)", "1.000", f2(swStats.AvgLatency)},
			{"SWMR + power topology (4M_T_G_S12)", f3(hPT), f2(swStats.AvgLatency)},
			{"MWSR point-to-point", f3(hMW), f2(mwStats.AvgLatency)},
		},
		Notes: []string{
			"MWSR lights only the path to one destination but arbitrates a token per",
			"packet; power topologies close much of the power gap at SWMR latency",
		},
	}, nil
}

// fourModeAssignment builds a representative 4-mode assignment for one
// source, shared by the signal and variation studies.
func fourModeAssignment(n, src int) []int {
	modeOf := make([]int, n)
	for j := range modeOf {
		switch {
		case j == src:
			modeOf[j] = -1
		case abs(j-src) <= n/8:
			modeOf[j] = 0
		case abs(j-src) <= n/3:
			modeOf[j] = 1
		case abs(j-src) <= n/2:
			modeOf[j] = 2
		default:
			modeOf[j] = 3
		}
	}
	return modeOf
}

// Signal audits a 4-mode splitter design's bit error rates and
// threshold-circuit margins (Section 3.2.2: sub-mIOP input "should be
// treated as noise" and rejected by a threshold circuit).
func Signal(ctx context.Context, c *Context) (*Table, error) {
	n := c.Opt.N
	src := n / 4
	modeOf := fourModeAssignment(n, src)
	d, err := splitter.Solve(c.Cfg.Splitter, src, modeOf, []float64{0.55, 0.25, 0.15, 0.05})
	if err != nil {
		return nil, fmt.Errorf("exp: signal: splitter design: %w", err)
	}
	link, err := signal.NewLink(c.Cfg.Splitter.PminUW)
	if err != nil {
		return nil, fmt.Errorf("exp: signal: link model: %w", err)
	}
	rep, err := signal.Audit(d, modeOf, link, 1e-9)
	if err != nil {
		return nil, fmt.Errorf("exp: signal: audit: %w", err)
	}
	t := &Table{
		ID:     "signal",
		Title:  "Signal integrity of a 4-mode design (source at N/4)",
		Header: []string{"mode", "worst in-mode BER"},
	}
	for m, ber := range rep.WorstBERPerMode {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", m+1), fmt.Sprintf("%.2e", ber)})
	}
	t.Notes = []string{
		fmt.Sprintf("max sub-threshold Q at out-of-mode receivers: %.2f (design Q: %.0f)",
			rep.MaxSubthresholdQ, signal.QMin),
		fmt.Sprintf("threshold-circuit compliant: %v", rep.Compliant),
	}
	return t, nil
}

// Variation sweeps fabrication error on the same 4-mode design and
// reports yield loss plus the guard band that restores 99% yield.
func Variation(ctx context.Context, c *Context) (*Table, error) {
	n := c.Opt.N
	src := n / 4
	modeOf := fourModeAssignment(n, src)
	d, err := splitter.Solve(c.Cfg.Splitter, src, modeOf, []float64{0.55, 0.25, 0.15, 0.05})
	if err != nil {
		return nil, fmt.Errorf("exp: variation: splitter design: %w", err)
	}
	sigmas := []float64{0.01, 0.02, 0.05, 0.10}
	results, err := variation.Sweep(d, modeOf, c.Cfg.Splitter.PminUW, sigmas, 500, c.Opt.Seed)
	if err != nil {
		return nil, fmt.Errorf("exp: variation: sweep: %w", err)
	}
	t := &Table{
		ID:     "variation",
		Title:  "Process-variation robustness of a 4-mode design",
		Header: []string{"splitter sigma", "fail fraction", "mean shortfall (dB)", "guard band for 99% yield (dB)"},
	}
	for i, r := range results {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", 100*sigmas[i]),
			f3(r.FailFraction), f3(float64(r.MeanWorstShortfallDB)), f3(float64(r.GuardBandDB)),
		})
	}
	t.Notes = []string{
		"guard band = uniform extra QD LED drive compensating fabrication error",
		"(programmable per mode, Section 3.2.2)",
	}
	return t, nil
}

// ProtocolAblation quantifies what the Owned state of the paper's MOSI
// protocol is worth: under MSI every remote read of a dirty line forces
// a memory writeback, adding packets and DRAM writes.
func ProtocolAblation(ctx context.Context, c *Context) (*Table, error) {
	n := c.Opt.N
	t := &Table{
		ID:     "protocol",
		Title:  "MOSI vs MSI coherence (multicore simulation)",
		Header: []string{"benchmark", "mem writes MOSI", "mem writes MSI", "packets MOSI", "packets MSI", "runtime MOSI", "runtime MSI"},
	}
	for _, name := range []string{"ocean_c", "water_ns"} {
		b, err := workload.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("exp: protocol: benchmark %s: %w", name, err)
		}
		baseCfg := sim.DefaultConfig(n)
		streams, err := sim.StreamsFromBenchmark(b, baseCfg, c.Opt.SimAccesses, c.Opt.Seed)
		if err != nil {
			return nil, fmt.Errorf("exp: protocol: streams for %s: %w", name, err)
		}
		run := func(p coherence.Protocol) (*sim.Result, error) {
			cfg := sim.DefaultConfig(n)
			cfg.Protocol = p
			net, err := noc.NewMNoC(n)
			if err != nil {
				return nil, err
			}
			m, err := sim.NewMachine(cfg, net)
			if err != nil {
				return nil, err
			}
			m.SetTelemetry(c.reg, c.tracer)
			return m.Run(streams)
		}
		mosi, err := run(coherence.MOSI)
		if err != nil {
			return nil, err
		}
		msi, err := run(coherence.MSI)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", mosi.Directory.MemWrites),
			fmt.Sprintf("%d", msi.Directory.MemWrites),
			fmt.Sprintf("%d", len(mosi.Trace.Packets)),
			fmt.Sprintf("%d", len(msi.Trace.Packets)),
			fmt.Sprintf("%d", mosi.RuntimeCycles),
			fmt.Sprintf("%d", msi.RuntimeCycles),
		})
	}
	t.Notes = []string{
		"the Owned state lets dirty data be shared without touching memory;",
		"the paper's Graphite setup uses MOSI for exactly this reason",
	}
	return t, nil
}

// AlphaGrid ablates the Appendix A α-search resolution: the paper
// iterates in 0.1 steps and notes "better results may be achieved by
// using steps smaller than 0.1"; our optimiser refines to 0.001. This
// experiment quantifies what each refinement level is worth.
func AlphaGrid(ctx context.Context, c *Context) (*Table, error) {
	p := c.Cfg.Splitter
	n := c.Opt.N
	src := n / 4
	modeOf := fourModeAssignment(n, src)
	weights := []float64{0.55, 0.25, 0.15, 0.05}
	costs, err := splitter.ModeCosts(p, src, modeOf, 4)
	if err != nil {
		return nil, fmt.Errorf("exp: alphagrid: mode costs: %w", err)
	}
	t := &Table{
		ID:     "alphagrid",
		Title:  "Splitter α-search resolution ablation (4-mode source)",
		Header: []string{"grid", "weighted source power (relative)"},
	}
	grids := []struct {
		name  string
		steps []float64
	}{
		{"0.1 (paper)", []float64{0.1}},
		{"0.1 + 0.01", []float64{0.1, 0.01}},
		{"0.1 + 0.01 + 0.001 (default)", []float64{0.1, 0.01, 0.001}},
	}
	base := phys.MicroWatts(0)
	for _, g := range grids {
		alphas := coordinateDescent(costs, weights, g.steps)
		v := splitter.WeightedPowerForAlphas(costs, alphas, weights)
		if base == 0 {
			base = v
		}
		t.Rows = append(t.Rows, []string{g.name, f3(float64(v / base))})
	}
	t.Notes = []string{"relative to the paper's 0.1 grid; lower is better"}
	return t, nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// coordinateDescent mirrors splitter.OptimalAlphas but with a custom
// step schedule, for the ablation.
func coordinateDescent(costs []phys.MicroWatts, weights, steps []float64) []float64 {
	m := len(costs)
	alphas := make([]float64, m)
	for i := range alphas {
		alphas[i] = 1
	}
	for _, step := range steps {
		for iter := 0; iter < 4; iter++ {
			for k := 1; k < m; k++ {
				best, bestV := alphas[k], splitter.WeightedPowerForAlphas(costs, alphas, weights)
				for v := step; v <= 1.0+1e-9; v += step {
					alphas[k] = v
					if obj := splitter.WeightedPowerForAlphas(costs, alphas, weights); obj < bestV {
						best, bestV = v, obj
					}
				}
				alphas[k] = best
			}
		}
	}
	for k := 1; k < m; k++ {
		if alphas[k] > alphas[k-1] {
			alphas[k] = alphas[k-1]
		}
	}
	return alphas
}
