module mnoc

go 1.22
