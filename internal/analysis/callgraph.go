package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Module is the interprocedural view of one lint run: every loaded
// package, a call graph over their declared functions, and per-function
// facts propagated across package boundaries (facts.go). Analyzers
// reach it through Pass.Module; per-package analyzers can ignore it.
type Module struct {
	Packages []*Package

	nodes map[*types.Func]*FuncNode
	// hotRootOf maps every function reachable from a //mnoclint:hot
	// root to the (lexicographically first) root's full name.
	hotRootOf map[*types.Func]string
}

// FuncNode is one declared function or method of the module.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Hot marks a //mnoclint:hot root directive on the declaration.
	Hot bool
	// Edges are the node's outgoing static call and reference edges.
	// Bodies of nested function literals (including `go func` bodies)
	// are attributed to the enclosing declaration.
	Edges []Edge
	// Facts are the function's propagated facts (facts.go).
	Facts Facts

	// paramIndex maps the receiver (index 0 for methods) and parameters
	// to their fact index; see Facts.MutatesParam.
	paramIndex map[types.Object]int
	nparams    int
}

// Edge is one outgoing reference from a function: a static call, or a
// method/function value mention (the callee may run later, so facts
// still flow along it).
type Edge struct {
	Callee *types.Func
	Site   token.Pos
	// MethodValue marks a reference without a call (x.M or f passed as
	// a value). ArgFlow is empty on such edges.
	MethodValue bool
	// ArgFlow maps callee fact-parameter index (receiver first for
	// methods) to the caller's fact-parameter index feeding it, or -1
	// when the argument is not a caller parameter. Variadic arguments
	// all map onto the variadic parameter's index.
	ArgFlow []int
}

// Node returns fn's graph node, or nil when fn was not declared in a
// loaded package (standard library, interface methods).
func (m *Module) Node(fn *types.Func) *FuncNode {
	if m == nil || fn == nil {
		return nil
	}
	return m.nodes[fn]
}

// FactsOf returns fn's propagated facts, or nil for functions outside
// the module (callers must treat nil as "nothing known").
func (m *Module) FactsOf(fn *types.Func) *Facts {
	if n := m.Node(fn); n != nil {
		return &n.Facts
	}
	return nil
}

// HotRootOf returns the full name of the //mnoclint:hot root fn is
// reachable from, or "" when fn is not on a hot path.
func (m *Module) HotRootOf(fn *types.Func) string {
	if m == nil {
		return ""
	}
	return m.hotRootOf[fn]
}

// HotRoots returns the module's hot-marked functions sorted by name.
func (m *Module) HotRoots() []*FuncNode {
	var roots []*FuncNode
	for _, n := range m.nodes {
		if n.Hot {
			roots = append(roots, n)
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		return roots[i].Fn.FullName() < roots[j].Fn.FullName()
	})
	return roots
}

// BuildModule constructs the call graph and propagates facts. The
// returned diagnostics report malformed //mnoclint:hot directives
// (ones not attached to a function declaration).
func BuildModule(pkgs []*Package) (*Module, []Diagnostic) {
	m := &Module{
		Packages:  pkgs,
		nodes:     map[*types.Func]*FuncNode{},
		hotRootOf: map[*types.Func]string{},
	}
	var diags []Diagnostic

	// Pass 1: nodes, hot marks.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			hotLines := hotDirectiveLines(pkg.Fset, f)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
				n.buildParamIndex()
				declLine := pkg.Fset.Position(fd.Pos()).Line
				docLine := declLine
				if fd.Doc != nil {
					docLine = pkg.Fset.Position(fd.Doc.Pos()).Line
				}
				for line := range hotLines {
					if line < declLine && line >= docLine-1 {
						n.Hot = true
						delete(hotLines, line)
					}
				}
				m.nodes[fn] = n
			}
			// Hot directives that matched no declaration are mistakes:
			// a misplaced root silently un-guards its hot path.
			var orphan []token.Pos
			for _, pos := range hotLines {
				orphan = append(orphan, pos)
			}
			sort.Slice(orphan, func(i, j int) bool { return orphan[i] < orphan[j] })
			for _, pos := range orphan {
				diags = append(diags, Diagnostic{
					Pos:      pkg.Fset.Position(pos),
					Analyzer: directiveAnalyzer,
					Message:  "hot directive is not attached to a function declaration (put //mnoclint:hot in the doc comment of the root function)",
				})
			}
		}
	}

	// Pass 2: edges and local facts.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if n := m.nodes[fn]; n != nil {
					n.collect(pkg.Info)
				}
			}
		}
	}

	m.propagateFacts()
	m.markHotReachable()
	return m, diags
}

// hotDirectiveLines returns line -> pos of every //mnoclint:hot
// comment in f. Directive validation happens against the declarations
// (BuildModule); the suppression parser ignores the hot verb.
func hotDirectiveLines(fset *token.FileSet, f *ast.File) map[int]token.Pos {
	lines := map[int]token.Pos{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if isHotDirective(c.Text) {
				lines[fset.Position(c.Pos()).Line] = c.Pos()
			}
		}
	}
	return lines
}

// buildParamIndex assigns fact indexes: receiver first (methods), then
// the declared parameters in order.
func (n *FuncNode) buildParamIndex() {
	n.paramIndex = map[types.Object]int{}
	sig, ok := n.Fn.Type().(*types.Signature)
	if !ok {
		return
	}
	idx := 0
	if recv := sig.Recv(); recv != nil {
		n.paramIndex[recv] = idx
		idx++
	}
	for i := 0; i < sig.Params().Len(); i++ {
		n.paramIndex[sig.Params().At(i)] = idx
		idx++
	}
	n.nparams = idx
}

// collect walks the declaration body (nested function literals
// included) recording outgoing edges and local facts.
func (n *FuncNode) collect(info *types.Info) {
	n.Facts.MutatesParam = make([]bool, n.nparams)
	n.Facts.EscapesParam = make([]bool, n.nparams)

	// consumed tracks call-Fun expressions (and their Sel identifiers)
	// so they are not re-counted as value references when the walk
	// descends into them.
	consumed := map[ast.Expr]bool{}
	consume := func(expr ast.Expr) {
		expr = ast.Unparen(expr)
		consumed[expr] = true
		if sel, ok := expr.(*ast.SelectorExpr); ok {
			consumed[sel.Sel] = true
		}
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			consume(node.Fun)
			n.addCallEdge(info, node)
			n.localCallFacts(info, node)
		case *ast.GoStmt:
			n.Facts.Spawns = true
		case *ast.SelectStmt:
			if selectHasReceive(node) {
				n.Facts.CancelAware = true
			}
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				n.Facts.CancelAware = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[node.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					n.Facts.CancelAware = true
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[node]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					n.Facts.Allocates = true
				}
			}
		case *ast.AssignStmt:
			n.localAssignFacts(info, node)
		case *ast.IncDecStmt:
			if i := n.factIndexOfBase(info, node.X); i >= 0 && !isPlainIdent(node.X) {
				n.Facts.MutatesParam[i] = true
			}
		case *ast.SendStmt:
			if i := n.factIndex(info, node.Value); i >= 0 {
				n.Facts.EscapesParam[i] = true
			}
		case *ast.SelectorExpr:
			if !consumed[node] {
				consume(node)
				n.addValueEdge(info, node)
			}
		case *ast.Ident:
			if !consumed[node] {
				n.addValueEdge(info, node)
			}
		}
		return true
	})
}

// addCallEdge records a static call edge with its argument flow.
func (n *FuncNode) addCallEdge(info *types.Info, call *ast.CallExpr) {
	callee := CalleeFunc(info, call)
	if callee == nil {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	nCallee := 0
	if sig.Recv() != nil {
		nCallee++
	}
	nCallee += sig.Params().Len()
	flow := make([]int, nCallee)
	for i := range flow {
		flow[i] = -1
	}
	slot := 0
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			flow[0] = n.factIndex(info, sel.X)
		}
		slot = 1
	}
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= sig.Params().Len()-1 {
			pi = sig.Params().Len() - 1
		}
		if pi >= sig.Params().Len() {
			break
		}
		flow[slot+pi] = n.factIndex(info, arg)
	}
	n.Edges = append(n.Edges, Edge{Callee: callee, Site: call.Pos(), ArgFlow: flow})
}

// addValueEdge records a method-value or function-value reference —
// x.M or f mentioned without being called. The callee may be invoked
// later through the value, so boolean facts must flow along the edge.
func (n *FuncNode) addValueEdge(info *types.Info, expr ast.Expr) {
	var obj types.Object
	switch expr := expr.(type) {
	case *ast.Ident:
		obj = info.Uses[expr]
	case *ast.SelectorExpr:
		obj = info.Uses[expr.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn == n.Fn {
		return
	}
	n.Edges = append(n.Edges, Edge{Callee: fn, Site: expr.Pos(), MethodValue: true})
}

// localCallFacts records the facts a call establishes directly.
func (n *FuncNode) localCallFacts(info *types.Info, call *ast.CallExpr) {
	fn := CalleeFunc(info, call)
	if fn == nil {
		// A dynamic call (through a function value) that receives a
		// context delegates cancellation to whatever runs: the spawner
		// cannot see further, so treat it as cancel-aware.
		for _, arg := range call.Args {
			if tv, ok := info.Types[arg]; ok && IsContextType(tv.Type) {
				n.Facts.CancelAware = true
			}
		}
		return
	}
	if fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			n.Facts.WallClock = true
		}
	case "fmt":
		if fn.Name() == "Sprintf" {
			n.Facts.Allocates = true
		}
	case "context":
		// ctx.Err()/ctx.Done() polled outside a select still observe
		// cancellation.
		if fn.Name() == "Err" || fn.Name() == "Done" {
			n.Facts.CancelAware = true
		}
	}
	if IsContextMethod(fn, "Err") || IsContextMethod(fn, "Done") {
		n.Facts.CancelAware = true
	}
}

// localAssignFacts records parameter mutations and escapes visible in
// one assignment.
func (n *FuncNode) localAssignFacts(info *types.Info, as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		// A write through a parameter (p.f = x, *p = x, p[i] = x)
		// mutates what the caller passed; rebinding the local copy
		// (p = x) does not.
		if isPlainIdent(lhs) {
			continue
		}
		if i := n.factIndexOfBase(info, lhs); i >= 0 {
			n.Facts.MutatesParam[i] = true
		}
	}
	for li, rhs := range as.Rhs {
		i := n.factIndex(info, rhs)
		if i < 0 {
			// A parameter buried in a composite literal escapes into
			// whatever the literal is stored in; be conservative.
			ast.Inspect(rhs, func(nd ast.Node) bool {
				if cl, ok := nd.(*ast.CompositeLit); ok {
					for _, el := range cl.Elts {
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							el = kv.Value
						}
						if j := n.factIndex(info, el); j >= 0 {
							n.Facts.EscapesParam[j] = true
						}
					}
				}
				return true
			})
			continue
		}
		// Parameter assigned somewhere: escapes unless the target is a
		// plain local variable.
		if li < len(as.Lhs) && escapingLValue(info, as.Lhs[li]) {
			n.Facts.EscapesParam[i] = true
		}
	}
}

// factIndex resolves expr to a fact-parameter index of n: the bare
// parameter, or the parameter behind &p / *p / parens.
func (n *FuncNode) factIndex(info *types.Info, expr ast.Expr) int {
	expr = ast.Unparen(expr)
	switch e := expr.(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return n.factIndex(info, e.X)
		}
	case *ast.StarExpr:
		return n.factIndex(info, e.X)
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			if i, ok := n.paramIndex[obj]; ok {
				return i
			}
		}
	}
	return -1
}

// factIndexOfBase resolves the root identifier of a selector/index/
// dereference chain to a fact-parameter index.
func (n *FuncNode) factIndexOfBase(info *types.Info, expr ast.Expr) int {
	return n.factIndex(info, BaseIdentExpr(expr))
}

// escapingLValue reports whether storing into lhs publishes the value
// beyond the function's locals: a field, element or dereference write,
// or a package-level variable.
func escapingLValue(info *types.Info, lhs ast.Expr) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		obj := info.Uses[lhs]
		if obj == nil {
			obj = info.Defs[lhs]
		}
		if v, ok := obj.(*types.Var); ok {
			return v.Parent() != nil && v.Parent().Parent() == types.Universe
		}
	}
	return false
}

// isPlainIdent reports whether expr is a bare identifier.
func isPlainIdent(expr ast.Expr) bool {
	_, ok := ast.Unparen(expr).(*ast.Ident)
	return ok
}

// selectHasReceive reports whether any select case receives.
func selectHasReceive(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := comm.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return true
			}
		case *ast.AssignStmt:
			for _, rhs := range comm.Rhs {
				if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					return true
				}
			}
		}
	}
	return false
}

// markHotReachable computes the forward closure of every hot root,
// attributing each reached function to the lexicographically first
// root that reaches it.
func (m *Module) markHotReachable() {
	for _, root := range m.HotRoots() {
		name := root.Fn.FullName()
		work := []*FuncNode{root}
		for len(work) > 0 {
			n := work[len(work)-1]
			work = work[:len(work)-1]
			if _, seen := m.hotRootOf[n.Fn]; seen {
				continue
			}
			m.hotRootOf[n.Fn] = name
			for _, e := range n.Edges {
				if next := m.nodes[e.Callee]; next != nil {
					if _, seen := m.hotRootOf[next.Fn]; !seen {
						work = append(work, next)
					}
				}
			}
		}
	}
}

// --- shared type helpers for the interprocedural analyzers ---

// IsContextType reports whether t is context.Context (or an identical
// named interface from a fixture's context stand-in package).
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && PackageMatches(obj.Pkg(), "context")
}

// IsContextMethod reports whether fn is the method name on
// context.Context (matched through the receiver or interface).
func IsContextMethod(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return IsContextType(sig.Recv().Type())
}

// BaseIdentExpr unwraps selector/index/slice/star/paren/unary chains
// to the root expression (usually an identifier).
func BaseIdentExpr(expr ast.Expr) ast.Expr {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.UnaryExpr:
			expr = e.X
		case *ast.TypeAssertExpr:
			expr = e.X
		default:
			return expr
		}
	}
}

// BaseIdentObj resolves the root identifier of expr to its object, or
// nil when the root is not a resolved identifier.
func BaseIdentObj(info *types.Info, expr ast.Expr) types.Object {
	id, ok := BaseIdentExpr(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
