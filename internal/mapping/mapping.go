// Package mapping solves the thread-to-core assignment problem of
// Section 4.4. Mapping frequently-communicating threads to cores near
// the middle of the serpentine waveguide (where broadcast power is
// lowest, Fig. 6) is an instance of the quadratic assignment problem
// (QAP); the paper uses Taillard's robust taboo search and Connolly's
// improved simulated annealing, and finds taboo generally best.
//
// The problem minimises Σ flow[t1][t2]·cost[loc(t1)][loc(t2)] over
// permutations, where flow is the thread×thread traffic matrix and cost
// is the core×core single-mode power cost ("the assignment accounts for
// only the waveguide loss between a source and destination").
package mapping

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mnoc/internal/trace"
	"mnoc/internal/waveguide"
)

// Problem is a QAP instance.
type Problem struct {
	N    int
	Flow [][]float64 // Flow[t1][t2]: traffic from thread t1 to t2
	Cost [][]float64 // Cost[c1][c2]: power cost of a c1→c2 packet
}

// NewProblem validates and wraps a QAP instance.
func NewProblem(flow, cost [][]float64) (*Problem, error) {
	n := len(flow)
	if n < 2 {
		return nil, fmt.Errorf("mapping: need >= 2 threads, got %d", n)
	}
	if len(cost) != n {
		return nil, fmt.Errorf("mapping: flow is %d×, cost is %d×", n, len(cost))
	}
	for i := 0; i < n; i++ {
		if len(flow[i]) != n || len(cost[i]) != n {
			return nil, fmt.Errorf("mapping: ragged matrix at row %d", i)
		}
	}
	return &Problem{N: n, Flow: flow, Cost: cost}, nil
}

// FromTraffic builds the paper's mapping problem: flow from a traffic
// matrix, cost from the waveguide's single-mode path loss
// (1/transmission, so farther pairs cost exponentially more).
func FromTraffic(m *trace.Matrix, l waveguide.Layout) (*Problem, error) {
	if m.N != l.N {
		return nil, fmt.Errorf("mapping: matrix size %d vs layout %d", m.N, l.N)
	}
	cost := make([][]float64, l.N)
	for i := range cost {
		cost[i] = make([]float64, l.N)
		for j := range cost[i] {
			if i != j {
				cost[i][j] = 1 / float64(l.PathTransmission(i, j))
			}
		}
	}
	return NewProblem(m.Counts, cost)
}

// Assignment maps thread → core; it is always a permutation.
type Assignment []int

// Identity returns the naive mapping (thread t on core t).
func Identity(n int) Assignment {
	a := make(Assignment, n)
	for i := range a {
		a[i] = i
	}
	return a
}

// Validate checks the assignment is a permutation of 0..n-1.
func (a Assignment) Validate(n int) error {
	if len(a) != n {
		return fmt.Errorf("mapping: assignment length %d, want %d", len(a), n)
	}
	seen := make([]bool, n)
	for t, c := range a {
		if c < 0 || c >= n {
			return fmt.Errorf("mapping: thread %d on core %d out of range", t, c)
		}
		if seen[c] {
			return fmt.Errorf("mapping: core %d used twice", c)
		}
		seen[c] = true
	}
	return nil
}

// Objective evaluates the QAP cost of an assignment.
func (p *Problem) Objective(a Assignment) float64 {
	sum := 0.0
	for i := 0; i < p.N; i++ {
		fi, ci := p.Flow[i], p.Cost[a[i]]
		for j := 0; j < p.N; j++ {
			if v := fi[j]; v != 0 {
				sum += v * ci[a[j]]
			}
		}
	}
	return sum
}

// swapDelta computes the objective change of swapping the cores of
// threads r and s (general asymmetric form, O(n)).
func (p *Problem) swapDelta(a Assignment, r, s int) float64 {
	ar, as := a[r], a[s]
	d := p.Flow[r][s]*(p.Cost[as][ar]-p.Cost[ar][as]) +
		p.Flow[s][r]*(p.Cost[ar][as]-p.Cost[as][ar])
	for k := 0; k < p.N; k++ {
		if k == r || k == s {
			continue
		}
		ak := a[k]
		d += p.Flow[k][r]*(p.Cost[ak][as]-p.Cost[ak][ar]) +
			p.Flow[k][s]*(p.Cost[ak][ar]-p.Cost[ak][as]) +
			p.Flow[r][k]*(p.Cost[as][ak]-p.Cost[ar][ak]) +
			p.Flow[s][k]*(p.Cost[ar][ak]-p.Cost[as][ak])
	}
	return d
}

// TabooOptions tunes the robust taboo search.
type TabooOptions struct {
	// Iterations is the number of moves to perform (default 40·n).
	Iterations int
	// Seed makes runs reproducible.
	Seed int64
	// MinTenure/MaxTenure bound the randomised tabu tenure
	// (defaults 0.9·n and 1.1·n, per Taillard's robust scheme).
	MinTenure, MaxTenure int
}

func (o *TabooOptions) fill(n int) {
	if o.Iterations <= 0 {
		o.Iterations = 40 * n
	}
	if o.MinTenure <= 0 {
		o.MinTenure = int(0.9 * float64(n))
	}
	if o.MaxTenure <= o.MinTenure {
		o.MaxTenure = int(1.1*float64(n)) + 1
	}
}

// Taboo runs Taillard's robust taboo search from the given start
// assignment (copied, not mutated) and returns the best found.
//
//mnoclint:hot
func (p *Problem) Taboo(start Assignment, opt TabooOptions) Assignment {
	opt.fill(p.N)
	rng := rand.New(rand.NewSource(opt.Seed))
	n := p.N

	cur := append(Assignment(nil), start...)
	best := append(Assignment(nil), cur...)
	curV := p.Objective(cur)
	bestV := curV

	// delta[r][s] caches swapDelta(cur, r, s) for r < s.
	delta := make([][]float64, n)
	for r := range delta {
		delta[r] = make([]float64, n)
		for s := r + 1; s < n; s++ {
			delta[r][s] = p.swapDelta(cur, r, s)
		}
	}
	// tabuUntil[t][c] forbids placing thread t back on core c until the
	// stored iteration.
	tabuUntil := make([][]int, n)
	for t := range tabuUntil {
		tabuUntil[t] = make([]int, n)
	}

	for iter := 1; iter <= opt.Iterations; iter++ {
		bestR, bestS := -1, -1
		bestD := math.Inf(1)
		for r := 0; r < n; r++ {
			for s := r + 1; s < n; s++ {
				d := delta[r][s]
				tabu := iter < tabuUntil[r][cur[s]] || iter < tabuUntil[s][cur[r]]
				aspired := curV+d < bestV-1e-12
				if tabu && !aspired {
					continue
				}
				if d < bestD {
					bestD, bestR, bestS = d, r, s
				}
			}
		}
		if bestR < 0 {
			// Everything tabu: pick a random move to keep going.
			bestR = rng.Intn(n)
			bestS = (bestR + 1 + rng.Intn(n-1)) % n
			if bestR > bestS {
				bestR, bestS = bestS, bestR
			}
			bestD = delta[bestR][bestS]
		}

		u, v := bestR, bestS
		tenure := opt.MinTenure + rng.Intn(opt.MaxTenure-opt.MinTenure)
		tabuUntil[u][cur[u]] = iter + tenure
		tabuUntil[v][cur[v]] = iter + tenure

		cur[u], cur[v] = cur[v], cur[u]
		curV += bestD
		if curV < bestV {
			bestV = curV
			copy(best, cur)
		}

		// Refresh the delta cache. Pairs touching {u,v} are recomputed;
		// the rest get Taillard's O(1) incremental update.
		for r := 0; r < n; r++ {
			for s := r + 1; s < n; s++ {
				if r == u || r == v || s == u || s == v {
					delta[r][s] = p.swapDelta(cur, r, s)
					continue
				}
				ar, as, au, av := cur[r], cur[s], cur[u], cur[v]
				// cur is already swapped: au is thread u's new core
				// (the old core of v) and vice versa.
				d := delta[r][s]
				d += (p.Flow[r][u] - p.Flow[r][v]) * (p.Cost[as][au] - p.Cost[as][av] + p.Cost[ar][av] - p.Cost[ar][au])
				d += (p.Flow[s][u] - p.Flow[s][v]) * (p.Cost[ar][au] - p.Cost[ar][av] + p.Cost[as][av] - p.Cost[as][au])
				d += (p.Flow[u][r] - p.Flow[v][r]) * (p.Cost[au][as] - p.Cost[av][as] + p.Cost[av][ar] - p.Cost[au][ar])
				d += (p.Flow[u][s] - p.Flow[v][s]) * (p.Cost[au][ar] - p.Cost[av][ar] + p.Cost[av][as] - p.Cost[au][as])
				delta[r][s] = d
			}
		}
	}
	return best
}

// AnnealOptions tunes the simulated annealing run.
type AnnealOptions struct {
	// Iterations is the number of attempted moves (default 200·n).
	Iterations int
	Seed       int64
}

func (o *AnnealOptions) fill(n int) {
	if o.Iterations <= 0 {
		o.Iterations = 200 * n
	}
}

// Anneal runs Connolly-style simulated annealing: the initial and final
// temperatures are derived from sampled move deltas and the temperature
// follows the T/(1+βT) cooling schedule.
func (p *Problem) Anneal(start Assignment, opt AnnealOptions) Assignment {
	opt.fill(p.N)
	rng := rand.New(rand.NewSource(opt.Seed))
	n := p.N

	cur := append(Assignment(nil), start...)
	best := append(Assignment(nil), cur...)
	curV := p.Objective(cur)
	bestV := curV

	// Sample deltas to pick Connolly's T0 = Δmin + (Δmax−Δmin)/10 and
	// Tf = Δmin.
	dmin, dmax := math.Inf(1), math.Inf(-1)
	for k := 0; k < 2*n; k++ {
		r := rng.Intn(n)
		s := (r + 1 + rng.Intn(n-1)) % n
		d := math.Abs(p.swapDelta(cur, r, s))
		if d == 0 {
			continue
		}
		if d < dmin {
			dmin = d
		}
		if d > dmax {
			dmax = d
		}
	}
	if math.IsInf(dmin, 1) { // completely flat landscape
		return best
	}
	t0 := dmin + (dmax-dmin)/10
	tf := dmin
	beta := (t0 - tf) / (float64(opt.Iterations) * t0 * tf)
	temp := t0

	for iter := 0; iter < opt.Iterations; iter++ {
		r := rng.Intn(n)
		s := (r + 1 + rng.Intn(n-1)) % n
		d := p.swapDelta(cur, r, s)
		if d < 0 || rng.Float64() < math.Exp(-d/temp) {
			cur[r], cur[s] = cur[s], cur[r]
			curV += d
			if curV < bestV {
				bestV = curV
				copy(best, cur)
			}
		}
		temp = temp / (1 + beta*temp)
	}
	return best
}

// CenterGreedy is a fast constructive heuristic: threads sorted by total
// traffic are placed onto cores sorted by their broadcast-power rank
// (middle of the waveguide first). It is both a baseline and a good
// taboo start.
func (p *Problem) CenterGreedy() Assignment {
	n := p.N
	// Thread heat: total in+out traffic.
	heat := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			heat[i] += p.Flow[i][j] + p.Flow[j][i]
		}
	}
	threads := Identity(n)
	sortByDesc(threads, heat)

	// Core cheapness: total cost to reach everyone (Fig. 6 profile).
	coreCost := make([]float64, n)
	for c := 0; c < n; c++ {
		for d := 0; d < n; d++ {
			coreCost[c] += p.Cost[c][d]
		}
	}
	cores := Identity(n)
	sortByAsc(cores, coreCost)

	a := make(Assignment, n)
	for rank, t := range threads {
		a[t] = cores[rank]
	}
	return a
}

func sortByDesc(idx []int, key []float64) {
	sort.Slice(idx, func(a, b int) bool {
		if key[idx[a]] != key[idx[b]] {
			return key[idx[a]] > key[idx[b]]
		}
		return idx[a] < idx[b]
	})
}

func sortByAsc(idx []int, key []float64) {
	sort.Slice(idx, func(a, b int) bool {
		if key[idx[a]] != key[idx[b]] {
			return key[idx[a]] < key[idx[b]]
		}
		return idx[a] < idx[b]
	})
}

// Solve runs the paper's preferred pipeline: CenterGreedy start, then
// robust taboo ("we explore both Taboo and simulated annealing, and
// find that Taboo generally performs best").
func (p *Problem) Solve(seed int64) Assignment {
	return p.Taboo(p.CenterGreedy(), TabooOptions{Seed: seed})
}
