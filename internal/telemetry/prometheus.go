package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4): counters as `counter`, gauges as
// `gauge`, histograms as `histogram` with cumulative `_bucket{le=...}`
// series plus `_sum` and `_count`. Metric families are emitted in
// sorted name order so the output is canonical for a given snapshot.
// Dotted metric names are sanitised to the Prometheus charset
// ([a-zA-Z0-9_:]), e.g. `artifact.get_ms` becomes `artifact_get_ms`.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n", pn)
		fmt.Fprintf(&b, "%s %d\n", pn, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(&b, "%s %s\n", pn, promFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		var cum uint64
		for _, bkt := range h.Buckets {
			cum += bkt.Count
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", pn, bkt.LE, cum)
		}
		fmt.Fprintf(&b, "%s_sum %s\n", pn, promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promName maps a dotted metric name onto the Prometheus name charset:
// every rune outside [a-zA-Z0-9_:] becomes '_', and a leading digit is
// prefixed with '_'. Empty names become "_".
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9')
		if !ok {
			b.WriteByte('_')
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects; non-finite
// values export as 0 to match the JSON snapshot's sanitising.
func promFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the recorded
// distribution by linear interpolation inside the bucket that holds
// the target rank — the standard fixed-bucket estimate (what
// Prometheus's histogram_quantile computes server-side). The lowest
// bucket interpolates from 0; a rank landing in the +Inf overflow
// bucket reports the largest finite bound (there is no upper edge to
// interpolate towards). Returns 0 when the histogram is empty or q is
// out of range.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return 0
	}
	rank := q * float64(h.Count)
	var cum uint64
	lower := 0.0
	for _, bkt := range h.Buckets {
		prev := cum
		cum += bkt.Count
		if float64(cum) < rank || bkt.Count == 0 {
			if le, err := strconv.ParseFloat(bkt.LE, 64); err == nil && !math.IsInf(le, 0) {
				lower = le
			}
			continue
		}
		le, err := strconv.ParseFloat(bkt.LE, 64)
		if err != nil || math.IsInf(le, 1) {
			// Overflow bucket: no finite upper edge.
			return lower
		}
		frac := (rank - float64(prev)) / float64(bkt.Count)
		return lower + (le-lower)*frac
	}
	return lower
}
