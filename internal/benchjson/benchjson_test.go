package benchjson

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const rawBenchOutput = `goos: linux
goarch: amd64
pkg: mnoc/internal/phys
cpu: Example CPU @ 3.0GHz
BenchmarkSplitterRecurrenceTyped-8   	 3479744	       344.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkPowerEvalTyped-8            	 1592734	       753.1 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	mnoc/internal/phys	4.876s
goos: linux
goarch: amd64
pkg: mnoc
cpu: Example CPU @ 3.0GHz
BenchmarkQAPTaboo-8                  	     100	  10250000 ns/op	  524288 B/op	      12 allocs/op
BenchmarkJSONArtisinalEncoding/solve-8 	 4000000	       301.0 ns/op	      16 B/op	       1 allocs/op
PASS
ok  	mnoc	12.3s
`

func TestParse(t *testing.T) {
	results, meta, err := Parse(strings.NewReader(rawBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if meta.GOOS != "linux" || meta.GOARCH != "amd64" || meta.CPU != "Example CPU @ 3.0GHz" {
		t.Errorf("meta headers not captured: %+v", meta)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(results), results)
	}
	want := Result{
		Name: "mnoc/internal/phys.BenchmarkSplitterRecurrenceTyped",
		Runs: 3479744, NsPerOp: 344.5,
	}
	if results[0] != want {
		t.Errorf("first result %+v, want %+v", results[0], want)
	}
	// Sub-benchmark names keep their /part but lose the -procs suffix,
	// and the pkg: header in force qualifies them.
	if got := results[3].Name; got != "mnoc.BenchmarkJSONArtisinalEncoding/solve" {
		t.Errorf("sub-benchmark name %q", got)
	}
	if results[2].BytesPerOp != 524288 || results[2].AllocsPerOp != 12 {
		t.Errorf("benchmem columns not parsed: %+v", results[2])
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, _, err := Parse(strings.NewReader("PASS\nok\tmnoc\t0.1s\n")); err == nil {
		t.Fatal("no error for output without benchmark lines")
	}
}

func TestTrimProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":        "BenchmarkFoo",
		"BenchmarkFoo-128":      "BenchmarkFoo",
		"BenchmarkFoo":          "BenchmarkFoo", // GOMAXPROCS=1 omits the suffix
		"BenchmarkFoo/n=10-8":   "BenchmarkFoo/n=10",
		"BenchmarkFoo/a-b":      "BenchmarkFoo/a-b", // non-numeric tail is part of the name
		"BenchmarkFoo/deep-2-4": "BenchmarkFoo/deep-2",
	} {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	results, _, err := Parse(strings.NewReader(rawBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(Meta{Date: "2026-08-08", GoVersion: "go1.24.0",
		GOOS: "linux", GOARCH: "amd64", Scale: "quick"}, results)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != f.Meta || len(got.Results) != len(f.Results) {
		t.Fatalf("round trip changed the file: %+v vs %+v", got, f)
	}
	for i := range f.Results {
		if got.Results[i] != f.Results[i] {
			t.Errorf("result %d drifted: %+v vs %+v", i, got.Results[i], f.Results[i])
		}
	}
	// Writing is deterministic: same file, same bytes.
	var a, b bytes.Buffer
	if err := f.Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := got.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("re-encoding the same file produced different bytes")
	}
}

func TestNewRejectsDuplicates(t *testing.T) {
	_, err := New(Meta{Date: "d", Scale: "quick"}, []Result{
		{Name: "mnoc.BenchmarkA", Runs: 1, NsPerOp: 1},
		{Name: "mnoc.BenchmarkA", Runs: 1, NsPerOp: 2},
	})
	if err == nil {
		t.Fatal("duplicate benchmark names accepted")
	}
}

// --- Comparator regression tests (the gate must gate) -----------------

// fixture builds a File from name -> [ns/op, allocs/op] pairs.
func fixture(t *testing.T, cpu string, rows map[string][2]float64) *File {
	t.Helper()
	var rs []Result
	for name, v := range rows {
		rs = append(rs, Result{Name: name, Runs: 100, NsPerOp: v[0], AllocsPerOp: int64(v[1])})
	}
	f, err := New(Meta{Date: "2026-08-08", Scale: "quick", CPU: cpu}, rs)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestComparePass(t *testing.T) {
	base := fixture(t, "cpuA", map[string][2]float64{
		"mnoc.BenchmarkA": {100, 2},
		"mnoc.BenchmarkB": {500, 0},
	})
	// +10% ns/op and equal allocs: inside the default 15% envelope.
	cur := fixture(t, "cpuA", map[string][2]float64{
		"mnoc.BenchmarkA": {110, 2},
		"mnoc.BenchmarkB": {500, 0},
	})
	rep := Compare(base, cur, DefaultThresholds())
	if !rep.OK() {
		t.Fatalf("pass fixture failed the gate: %+v", rep)
	}
	if rep.Unchanged != 2 || rep.CPUMismatch {
		t.Errorf("report %+v, want 2 unchanged on matching CPUs", rep)
	}
}

func TestCompareNsRegression(t *testing.T) {
	base := fixture(t, "", map[string][2]float64{"mnoc.BenchmarkA": {100, 0}})
	cur := fixture(t, "", map[string][2]float64{"mnoc.BenchmarkA": {116, 0}})
	rep := Compare(base, cur, DefaultThresholds())
	if rep.OK() {
		t.Fatal("+16% ns/op passed a 15% gate")
	}
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0].Reason, "ns/op") {
		t.Fatalf("regressions %+v, want one ns/op reason", rep.Regressions)
	}
	// A looser threshold admits the same movement.
	if rep := Compare(base, cur, Thresholds{NsFrac: 0.25}); !rep.OK() {
		t.Errorf("+16%% failed a 25%% gate: %+v", rep)
	}
}

func TestCompareAllocsRegression(t *testing.T) {
	base := fixture(t, "", map[string][2]float64{"mnoc.BenchmarkA": {100, 0}})
	// Faster but allocating: still a regression — allocs are exact.
	cur := fixture(t, "", map[string][2]float64{"mnoc.BenchmarkA": {90, 1}})
	rep := Compare(base, cur, DefaultThresholds())
	if rep.OK() {
		t.Fatal("an allocs/op increase passed the gate")
	}
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0].Reason, "allocs/op") {
		t.Fatalf("regressions %+v, want one allocs/op reason", rep.Regressions)
	}
}

func TestCompareAddedRemoved(t *testing.T) {
	base := fixture(t, "", map[string][2]float64{
		"mnoc.BenchmarkA": {100, 0},
		"mnoc.BenchmarkB": {100, 0},
	})
	cur := fixture(t, "", map[string][2]float64{
		"mnoc.BenchmarkA": {100, 0},
		"mnoc.BenchmarkC": {100, 0},
	})
	rep := Compare(base, cur, DefaultThresholds())
	if rep.OK() {
		t.Fatal("a silently-dropped baseline benchmark passed the gate")
	}
	if len(rep.Removed) != 1 || rep.Removed[0] != "mnoc.BenchmarkB" {
		t.Errorf("removed %v, want [mnoc.BenchmarkB]", rep.Removed)
	}
	if len(rep.Added) != 1 || rep.Added[0] != "mnoc.BenchmarkC" {
		t.Errorf("added %v, want [mnoc.BenchmarkC]", rep.Added)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"REMOVED mnoc.BenchmarkB", "added mnoc.BenchmarkC"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report text missing %q:\n%s", want, buf.String())
		}
	}
}

func TestCompareImprovementAndCPUMismatch(t *testing.T) {
	base := fixture(t, "cpuA", map[string][2]float64{"mnoc.BenchmarkA": {100, 3}})
	cur := fixture(t, "cpuB", map[string][2]float64{"mnoc.BenchmarkA": {40, 1}})
	rep := Compare(base, cur, DefaultThresholds())
	if !rep.OK() {
		t.Fatalf("improvement failed the gate: %+v", rep)
	}
	if len(rep.Improvements) != 1 {
		t.Fatalf("improvements %+v, want one entry", rep.Improvements)
	}
	if !rep.CPUMismatch {
		t.Error("CPU mismatch not flagged")
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "different CPUs") {
		t.Errorf("report text missing CPU warning:\n%s", buf.String())
	}
}
