package analysis_test

import (
	"go/ast"
	"path/filepath"
	"strings"
	"testing"

	"mnoc/internal/analysis"
)

// flagret reports every return statement; trivially predictable, so
// the engine test can pin exact positions across files and packages.
var flagret = &analysis.Analyzer{
	Name: "flagret",
	Doc:  "flags every return statement (engine test only)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if ret, ok := n.(*ast.ReturnStmt); ok {
					pass.Reportf(ret.Pos(), "return statement")
				}
				return true
			})
		}
		return nil
	},
}

func TestRunAcrossPackages(t *testing.T) {
	loader := analysis.NewFixtureLoader(filepath.Join("testdata", "src"))
	pkgs, err := loader.Load("...")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2 (alpha, beta)", len(pkgs))
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{flagret})
	if err != nil {
		t.Fatalf("running: %v", err)
	}

	want := []struct {
		file     string
		line     int
		analyzer string
		msg      string
	}{
		{"a.go", 5, "flagret", "return statement"},
		{"b.go", 5, "flagret", "return statement"},
		{"beta.go", 12, "flagret", "return statement"}, // D's return; C's is suppressed
		{"beta.go", 15, "mnoclint", "unknown directive"},
		{"beta.go", 16, "mnoclint", "missing analyzer name"},
		{"beta.go", 17, "mnoclint", "unknown analyzer"},
		{"beta.go", 18, "mnoclint", "has no reason"},
		{"beta.go", 22, "mnoclint", "suppresses nothing"}, // the well-formed allow above E
	}
	if len(diags) != len(want) {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(want))
	}
	for i, w := range want {
		d := diags[i]
		if filepath.Base(d.Pos.Filename) != w.file || d.Pos.Line != w.line ||
			d.Analyzer != w.analyzer || !strings.Contains(d.Message, w.msg) {
			t.Errorf("diag %d = %s, want %s:%d %s %q", i, d, w.file, w.line, w.analyzer, w.msg)
		}
	}
}

// TestDiagnosticString pins the vet-style rendering cmd/mnoclint prints.
func TestDiagnosticString(t *testing.T) {
	loader := analysis.NewFixtureLoader(filepath.Join("testdata", "src"))
	pkgs, err := loader.Load("alpha")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{flagret})
	if err != nil {
		t.Fatalf("running: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	got := diags[0].String()
	wantSuffix := "a.go:5:2: flagret: return statement"
	if !strings.HasSuffix(got, wantSuffix) {
		t.Errorf("String() = %q, want suffix %q", got, wantSuffix)
	}
}
