package power_test

import (
	"fmt"

	"mnoc/internal/power"
	"mnoc/internal/topo"
	"mnoc/internal/trace"
)

// Example evaluates a 2-mode distance topology against the broadcast
// base on purely local traffic — the situation where power topologies
// shine: every packet rides the low mode.
func Example() {
	const n = 32
	cfg := power.DefaultConfig(n)

	base, err := power.NewBaseMNoC(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	t, err := topo.DistanceBased(n, []int{16, 15})
	if err != nil {
		fmt.Println(err)
		return
	}
	pt, err := power.NewMNoC(cfg, t, power.UniformWeighting(2))
	if err != nil {
		fmt.Println(err)
		return
	}

	m := trace.NewMatrix(n)
	for s := 0; s < n-1; s++ {
		m.Counts[s][s+1] = 1000 // nearest-neighbour only
	}
	b0, err := base.Evaluate(m, 1e6)
	if err != nil {
		fmt.Println(err)
		return
	}
	b2, err := pt.Evaluate(m, 1e6)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("2-mode beats broadcast:", b2.TotalUW() < b0.TotalUW())
	fmt.Println("source power drops:", b2.SourceUW < b0.SourceUW)
	fmt.Println("O/E power drops (fewer listeners):", b2.OEUW < b0.OEUW)
	// Output:
	// 2-mode beats broadcast: true
	// source power drops: true
	// O/E power drops (fewer listeners): true
}
