package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	m := NewMatrix(4)
	m.Counts[0][1] = 1.5
	m.Counts[2][3] = 42
	m.Counts[3][0] = 0.001
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Counts, m.Counts) {
		t.Fatalf("round trip mismatch:\n%v\n%v", got.Counts, m.Counts)
	}
}

func TestReadCSVRejections(t *testing.T) {
	cases := map[string]string{
		"one row":       "0,1\n",
		"ragged":        "0,1\n1\n",
		"non-square":    "0,1,2\n1,0,2\n",
		"negative":      "0,-1\n1,0\n",
		"diagonal":      "1,1\n1,0\n",
		"non-numeric":   "0,x\n1,0\n",
		"empty":         "",
		"single column": "0\n0\n",
	}
	for name, data := range cases {
		if _, err := ReadCSV(strings.NewReader(data)); err == nil {
			t.Errorf("%s: accepted %q", name, data)
		}
	}
}

func TestReadCSVAccepts(t *testing.T) {
	m, err := ReadCSV(strings.NewReader("0,2,3\n4,0,5\n6,7,0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 3 || m.Counts[1][2] != 5 || m.Total() != 27 {
		t.Fatalf("parsed wrong: %+v", m.Counts)
	}
}
