package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"mnoc/internal/exp"
	"mnoc/internal/runner"
)

// benchCmd regenerates the paper's tables and figures through the
// runner engine: entries are scheduled on a bounded worker pool, and
// with -cache-dir every solved artefact persists so a warm re-run
// skips the QAP and splitter searches entirely (the run summary on
// stderr shows the hit/miss and solve counters).
func benchCmd(args []string) {
	fs := flag.NewFlagSet("mnoc bench", flag.ExitOnError)
	var (
		which      = fs.String("exp", "all", "experiment id, 'all' (paper artefacts), 'ext' (extensions), or 'everything' (ids: "+idList()+")")
		scale      = fs.String("scale", "paper", "paper (radix-256) or quick (radix-64)")
		seed       = fs.Int64("seed", 1, "random seed for workloads and heuristics")
		asJSON     = fs.Bool("json", false, "emit results as a JSON array instead of text tables")
		parallel   = fs.Int("parallel", runner.DefaultWorkers, "worker goroutines (kept for mnoc-bench parity; -workers wins)")
		workers    = fs.Int("workers", 0, "worker goroutines for precomputation and experiment scheduling")
		csvDir     = fs.String("csv", "", "also write each experiment's table as <dir>/<id>.csv")
		cacheDir   = fs.String("cache-dir", "", "persistent artifact cache directory (warm runs skip every solve)")
		configPath = fs.String("config", "", "JSON runner config file; explicitly-set flags override it")
		failFast   = fs.Bool("fail-fast", false, "cancel the run on the first entry error instead of reporting all failures")
	)
	tf := addTelemetryFlags(fs)
	fs.Parse(args)

	cfg, err := loadBase(*configPath)
	if err != nil {
		fail("bench", err)
	}
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "scale":
			cfg.Scale = *scale
			cfg.Options = nil
		case "seed":
			cfg.Seed = *seed
		case "parallel":
			cfg.Workers = *parallel
		case "workers":
			cfg.Workers = *workers
		case "json":
			cfg.JSON = *asJSON
		case "csv":
			cfg.CSVDir = *csvDir
		case "cache-dir":
			cfg.CacheDir = *cacheDir
		case "metrics-out":
			cfg.MetricsOut = *tf.metricsOut
		case "trace-out":
			cfg.TraceOut = *tf.traceOut
		case "pprof":
			cfg.PprofAddr = *tf.pprofAddr
		case "fail-fast":
			cfg.FailFast = *failFast
		}
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	r, err := runner.New(cfg)
	if err != nil {
		fail("bench", err)
	}
	startPprof("bench", cfg.PprofAddr)
	entries, err := pickEntries(*which)
	if err != nil {
		fail("bench", err)
	}
	begin := time.Now()
	if err := r.Precompute(ctx); err != nil {
		fail("bench", err)
	}
	if !cfg.JSON {
		fmt.Printf("mnoc bench: scale=%s radix=%d seed=%d experiments=%d workers=%d\n\n",
			scaleName(cfg), r.Options().N, r.Options().Seed, len(entries), r.Workers())
	}
	if err := r.Run(ctx, os.Stdout, entries); err != nil {
		fail("bench", err)
	}
	fmt.Fprintln(os.Stderr, "mnoc bench:", r.Summary())
	meta := map[string]any{
		"subcommand":  "bench",
		"scale":       scaleName(cfg),
		"radix":       r.Options().N,
		"seed":        r.Options().Seed,
		"experiments": len(entries),
		"workers":     r.Workers(),
		"wall_ms":     time.Since(begin).Milliseconds(),
	}
	if err := writeTelemetry(r.Telemetry(), r.Tracer(), cfg.MetricsOut, cfg.TraceOut, meta); err != nil {
		fail("bench", err)
	}
}

// loadBase returns the config file's settings, or the zero Config
// (paper scale, default workers) when no file is given.
func loadBase(path string) (runner.Config, error) {
	if path == "" {
		return runner.Config{}, nil
	}
	return runner.LoadConfig(path)
}

// scaleName names the resolved scale for the run header.
func scaleName(cfg runner.Config) string {
	switch {
	case cfg.Options != nil:
		return "custom"
	case cfg.Scale == "":
		return "paper"
	default:
		return cfg.Scale
	}
}

func pickEntries(which string) ([]exp.Entry, error) {
	switch which {
	case "all":
		return exp.Registry(), nil
	case "ext":
		return exp.Extensions(), nil
	case "everything":
		return append(exp.Registry(), exp.Extensions()...), nil
	}
	e, err := exp.ByID(which)
	if err != nil {
		if e, err = exp.ExtensionByID(which); err != nil {
			return nil, err
		}
	}
	return []exp.Entry{e}, nil
}

func idList() string {
	var ids []string
	for _, e := range exp.Registry() {
		ids = append(ids, e.ID)
	}
	for _, e := range exp.Extensions() {
		ids = append(ids, e.ID)
	}
	return strings.Join(ids, ",")
}
