package cache

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, size, ways, line int) *Cache {
	t.Helper()
	c, err := New(size, ways, line)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGeometry(t *testing.T) {
	c := mustNew(t, 32*1024, 4, 64)
	if c.Sets() != 128 || c.Ways() != 4 || c.LineBytes() != 64 {
		t.Fatalf("geometry: sets=%d ways=%d line=%d", c.Sets(), c.Ways(), c.LineBytes())
	}
}

func TestNewRejections(t *testing.T) {
	cases := [][3]int{
		{0, 4, 64}, {1024, 0, 64}, {1024, 4, 0},
		{1000, 4, 64}, {1024, 3, 64}, {1024, 4, 60},
		{128, 4, 64}, // fewer lines than ways
	}
	for _, c := range cases {
		if _, err := New(c[0], c[1], c[2]); err == nil {
			t.Errorf("New(%v) accepted", c)
		}
	}
}

func TestInsertLookup(t *testing.T) {
	c := mustNew(t, 1024, 2, 64)
	if l := c.Lookup(0x1000); l != nil {
		t.Fatal("hit on empty cache")
	}
	c.Insert(0x1000, Shared)
	l := c.Lookup(0x1000)
	if l == nil || l.State != Shared {
		t.Fatalf("lookup after insert: %+v", l)
	}
	// Same line, different offset.
	if l := c.Lookup(0x103F); l == nil {
		t.Fatal("offset within line missed")
	}
	if c.Stats.Hits != 2 || c.Stats.Misses != 1 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

func TestInsertUpdatesExisting(t *testing.T) {
	c := mustNew(t, 1024, 2, 64)
	c.Insert(0x40, Shared)
	if _, had := c.Insert(0x40, Modified); had {
		t.Fatal("re-insert reported a victim")
	}
	if l := c.Peek(0x40); l == nil || l.State != Modified {
		t.Fatalf("state not updated: %+v", l)
	}
	if c.Stats.Evictions != 0 {
		t.Fatal("phantom eviction")
	}
}

func TestLRUEviction(t *testing.T) {
	c := mustNew(t, 2*64, 2, 64) // one set, two ways
	c.Insert(0x0, Shared)
	c.Insert(0x1000, Shared)
	c.Lookup(0x0) // make 0x0 most recent
	v, had := c.Insert(0x2000, Modified)
	if !had {
		t.Fatal("no victim on full set")
	}
	if v.Addr != 0x1000 || v.State != Shared {
		t.Fatalf("wrong victim: %+v", v)
	}
	if c.Peek(0x0) == nil || c.Peek(0x2000) == nil {
		t.Fatal("survivors missing")
	}
}

func TestInvalidSlotPreferredOverEviction(t *testing.T) {
	c := mustNew(t, 2*64, 2, 64)
	c.Insert(0x0, Shared)
	c.Insert(0x1000, Shared)
	c.Invalidate(0x0)
	if _, had := c.Insert(0x2000, Shared); had {
		t.Fatal("evicted despite invalid slot")
	}
	if c.Peek(0x1000) == nil {
		t.Fatal("valid line displaced")
	}
}

func TestInvalidate(t *testing.T) {
	c := mustNew(t, 1024, 2, 64)
	c.Insert(0x80, Owned)
	st, ok := c.Invalidate(0x80)
	if !ok || st != Owned {
		t.Fatalf("Invalidate = %v,%v", st, ok)
	}
	if c.Peek(0x80) != nil {
		t.Fatal("line still present")
	}
	if _, ok := c.Invalidate(0x80); ok {
		t.Fatal("double invalidate reported present")
	}
}

func TestSetState(t *testing.T) {
	c := mustNew(t, 1024, 2, 64)
	c.Insert(0xC0, Shared)
	if !c.SetState(0xC0, Owned) {
		t.Fatal("SetState missed resident line")
	}
	if l := c.Peek(0xC0); l.State != Owned {
		t.Fatalf("state = %v", l.State)
	}
	if c.SetState(0xF000, Modified) {
		t.Fatal("SetState hit absent line")
	}
}

func TestInsertInvalidIsNoop(t *testing.T) {
	c := mustNew(t, 1024, 2, 64)
	if _, had := c.Insert(0x40, Invalid); had {
		t.Fatal("inserting Invalid produced a victim")
	}
	if c.Peek(0x40) != nil {
		t.Fatal("Invalid line materialised")
	}
}

func TestBlockAddr(t *testing.T) {
	c := mustNew(t, 1024, 2, 64)
	if got := c.BlockAddr(0x12345); got != 0x12340 {
		t.Errorf("BlockAddr = %#x, want 0x12340", got)
	}
}

func TestStateStringAndPredicates(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Owned.String() != "O" || Modified.String() != "M" {
		t.Error("state names wrong")
	}
	if State(9).String() == "" {
		t.Error("unknown state unprintable")
	}
	if Invalid.Readable() || !Shared.Readable() {
		t.Error("Readable wrong")
	}
	if !Modified.Writable() || Owned.Writable() {
		t.Error("Writable wrong")
	}
	if !Owned.Dirty() || !Modified.Dirty() || Shared.Dirty() {
		t.Error("Dirty wrong")
	}
}

// TestNoTwoLinesShareTag: inserting many random addresses never produces
// duplicate (set, tag) pairs — a uniqueness invariant checked by
// re-looking-up every inserted block.
func TestNoTwoLinesShareTag(t *testing.T) {
	f := func(addrs []uint32) bool {
		c, err := New(4096, 4, 64)
		if err != nil {
			return false
		}
		for _, a := range addrs {
			c.Insert(uint64(a), Shared)
			// After every insert the block must be found exactly once.
			set := c.set(uint64(a))
			count := 0
			for i := range set {
				if set[i].State != Invalid && set[i].Tag == c.tag(uint64(a)) {
					count++
				}
			}
			if count != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
