// Package artifact is the runner's content-addressed cache for the
// expensive intermediates of an evaluation run: calibrated traffic
// matrices, QAP thread mappings, solved power.MNoC designs, packet
// traces, and multicore-simulation results. Every artifact is stored as
// an immutable blob under a key derived from a hash of its inputs
// (radix, seed, QAP budget, benchmark, device configuration, ...), so a
// warm re-run of the full evaluation skips every solve.
//
// Two Store implementations exist: Memory (the default — per-process,
// what exp.Context always had) and Disk (opt-in via --cache-dir, shared
// across processes). Blobs carry a self-describing envelope (magic,
// kind, format version); bumping a codec's version changes both the
// envelope and the key, so stale on-disk artifacts are simply never
// looked up again. docs/RUNNER.md describes the scheme.
package artifact

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// Key names an artifact: the hex SHA-256 of its canonical input
// description (see NewKey).
type Key string

// Stats counts store traffic. Hits and Misses count Get calls; Puts
// counts stored blobs. Corrupt counts blobs whose envelope failed
// validation on read and were quarantined (Disk only; every corrupt
// read also counts as a miss, so Hits+Misses still totals Get calls).
type Stats struct {
	Hits, Misses, Puts, Corrupt uint64
}

// Store is a content-addressed blob store. Implementations must be safe
// for concurrent use. Put is idempotent: storing a key that already
// exists is allowed (content addressing guarantees the bytes match).
type Store interface {
	// Get returns the blob stored under key; ok is false on a miss.
	Get(key Key) (blob []byte, ok bool, err error)
	// Put stores blob under key.
	Put(key Key, blob []byte) error
	// Stats returns the cumulative hit/miss/put counters.
	Stats() Stats
}

// Locator is implemented by stores that live somewhere nameable — a
// cache directory, a remote base URL — so run summaries can say where
// the artifacts went without type-asserting every concrete store.
type Locator interface {
	// Location describes the store's backing, e.g. "/tmp/cache" for a
	// disk store or "remote http://host:port" for the fleet store.
	Location() string
}

// counters is the shared atomic Stats backing.
type counters struct {
	hits, misses, puts, corrupt atomic.Uint64
}

func (c *counters) stats() Stats {
	return Stats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Puts:    c.puts.Load(),
		Corrupt: c.corrupt.Load(),
	}
}

// Memory is the in-process Store: a plain map. It is the default cache
// behind exp.Context, preserving the old per-run memoisation semantics.
type Memory struct {
	mu sync.RWMutex
	m  map[Key][]byte
	c  counters
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory { return &Memory{m: make(map[Key][]byte)} }

// Get implements Store.
func (s *Memory) Get(key Key) ([]byte, bool, error) {
	s.mu.RLock()
	blob, ok := s.m[key]
	s.mu.RUnlock()
	if !ok {
		s.c.misses.Add(1)
		return nil, false, nil
	}
	s.c.hits.Add(1)
	return blob, true, nil
}

// Put implements Store.
func (s *Memory) Put(key Key, blob []byte) error {
	cp := append([]byte(nil), blob...)
	s.mu.Lock()
	s.m[key] = cp
	s.mu.Unlock()
	s.c.puts.Add(1)
	return nil
}

// Stats implements Store.
func (s *Memory) Stats() Stats { return s.c.stats() }

// Len reports the number of stored artifacts.
func (s *Memory) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Disk is the persistent Store: one file per artifact under
// dir/<k[:2]>/<k>.art (the two-character fan-out keeps directories
// small at paper scale). Writes go through a temp file + rename, so a
// crashed run never leaves a truncated artifact behind; reads validate
// the envelope anyway (caches written before the rename scheme, failing
// disks, hand-edited files) and quarantine anything malformed to
// <key>.corrupt instead of failing the request — the caller just sees
// a miss and re-solves.
type Disk struct {
	dir string
	c   counters

	// onCorrupt, when set, is called once per quarantined blob. Instrument
	// wires it to the artifact.corrupt counter; it must be set before the
	// store sees traffic.
	onCorrupt func()
}

// NewDisk opens (creating if needed) a disk store rooted at dir.
func NewDisk(dir string) (*Disk, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	return &Disk{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Disk) Dir() string { return s.dir }

// Location implements Locator.
func (s *Disk) Location() string { return s.dir }

func (s *Disk) path(key Key) (string, error) {
	if len(key) < 4 {
		return "", fmt.Errorf("artifact: malformed key %q", key)
	}
	return filepath.Join(s.dir, string(key[:2]), string(key)+".art"), nil
}

// Get implements Store. A blob whose envelope fails validation is
// quarantined (renamed to <key>.corrupt, so the evidence survives for
// inspection but never resurfaces as a hit) and reported as a miss:
// cache corruption costs a re-solve, not the request.
func (s *Disk) Get(key Key) ([]byte, bool, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, false, err
	}
	blob, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		s.c.misses.Add(1)
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("artifact: reading %s: %w", key, err)
	}
	if err := CheckEnvelope(blob); err != nil {
		s.quarantine(p)
		s.c.corrupt.Add(1)
		s.c.misses.Add(1)
		return nil, false, nil
	}
	s.c.hits.Add(1)
	return blob, true, nil
}

// quarantine moves a corrupt blob aside so the next Get of the same key
// is a clean miss. Rename is atomic on the same filesystem; if it fails
// (e.g. a concurrent quarantine won the race) fall back to removal —
// leaving the corrupt file in place would make every future Get re-read
// garbage.
func (s *Disk) quarantine(p string) {
	if err := os.Rename(p, strings.TrimSuffix(p, ".art")+".corrupt"); err != nil {
		os.Remove(p)
	}
	if s.onCorrupt != nil {
		s.onCorrupt()
	}
}

// Put implements Store.
func (s *Disk) Put(key Key, blob []byte) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: writing %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: writing %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: committing %s: %w", key, err)
	}
	s.c.puts.Add(1)
	return nil
}

// Stats implements Store.
func (s *Disk) Stats() Stats { return s.c.stats() }
