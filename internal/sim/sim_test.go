package sim

import (
	"testing"

	"mnoc/internal/noc"
	"mnoc/internal/telemetry"
	"mnoc/internal/workload"
)

func smallConfig(cores int) Config {
	cfg := DefaultConfig(cores)
	cfg.L1SizeBytes = 4 * 1024
	cfg.L2SizeBytes = 32 * 1024
	return cfg
}

func newMachine(t *testing.T, cores int) *Machine {
	t.Helper()
	net, err := noc.NewMNoC(cores)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(smallConfig(cores), net)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(256).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig(256)
	bad.Cores = 1
	if err := bad.Validate(); err == nil {
		t.Error("1 core accepted")
	}
	bad = DefaultConfig(16)
	bad.MemCycles = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero memory latency accepted")
	}
}

func TestNewMachineRejectsMismatch(t *testing.T) {
	net, err := noc.NewMNoC(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMachine(smallConfig(32), net); err == nil {
		t.Error("core/network mismatch accepted")
	}
}

func TestRunEmptyAndMismatchedStreams(t *testing.T) {
	m := newMachine(t, 4)
	if _, err := m.Run(make([][]Access, 3)); err == nil {
		t.Error("stream count mismatch accepted")
	}
	res, err := m.Run(make([][]Access, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.RuntimeCycles != 0 || res.Accesses != 0 {
		t.Errorf("empty run produced work: %+v", res)
	}
}

func TestPrivateWorkingSetHitsAfterWarmup(t *testing.T) {
	m := newMachine(t, 4)
	// Core 0 reads the same block repeatedly: 1 miss, then hits.
	streams := make([][]Access, 4)
	for i := 0; i < 100; i++ {
		streams[0] = append(streams[0], Access{Addr: 0x1000})
	}
	res, err := m.Run(streams)
	if err != nil {
		t.Fatal(err)
	}
	if res.L2Misses != 1 {
		t.Errorf("misses = %d, want 1", res.L2Misses)
	}
	if res.Accesses != 100 {
		t.Errorf("accesses = %d", res.Accesses)
	}
}

func TestSharingGeneratesCoherenceTraffic(t *testing.T) {
	m := newMachine(t, 4)
	shared := uint64(0x40) // homed at core 1
	streams := make([][]Access, 4)
	// Core 2 writes, then core 3 reads the same block (the heap
	// interleaves them; the directory must forward or refetch).
	for i := 0; i < 50; i++ {
		streams[2] = append(streams[2], Access{Write: true, Addr: shared})
		streams[3] = append(streams[3], Access{Addr: shared})
	}
	res, err := m.Run(streams)
	if err != nil {
		t.Fatal(err)
	}
	if res.Directory.InvalidationsSent == 0 && res.Directory.Forwards == 0 {
		t.Errorf("no coherence activity: %+v", res.Directory)
	}
	if len(res.Trace.Packets) == 0 {
		t.Error("no packets traced")
	}
	if err := res.Trace.Validate(); err != nil {
		t.Errorf("invalid trace: %v", err)
	}
}

func TestWriteThenReadOtherCoreForwards(t *testing.T) {
	m := newMachine(t, 8)
	shared := uint64(0x40 * 3)
	streams := make([][]Access, 8)
	streams[2] = []Access{{Write: true, Addr: shared}}
	// Core 5 starts later (longer think chain forces ordering via
	// more accesses before the shared one).
	streams[5] = []Access{{Addr: 0x5000}, {Addr: 0x5040}, {Addr: 0x5080}, {Addr: shared}}
	res, err := m.Run(streams)
	if err != nil {
		t.Fatal(err)
	}
	if res.Directory.Forwards == 0 {
		t.Errorf("dirty read did not forward: %+v", res.Directory)
	}
	if res.Directory.DataFromOwner == 0 {
		t.Error("no owner-supplied data")
	}
}

func TestStreamsFromBenchmark(t *testing.T) {
	b, err := workload.ByName("ocean_c")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(16)
	streams, err := StreamsFromBenchmark(b, cfg, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 16 {
		t.Fatalf("%d streams", len(streams))
	}
	for c, st := range streams {
		if len(st) != 200 {
			t.Fatalf("core %d has %d accesses", c, len(st))
		}
	}
	// Determinism.
	again, err := StreamsFromBenchmark(b, cfg, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	for c := range streams {
		for i := range streams[c] {
			if streams[c][i] != again[c][i] {
				t.Fatal("streams not deterministic")
			}
		}
	}
	if _, err := StreamsFromBenchmark(b, cfg, 0, 1); err == nil {
		t.Error("zero accesses accepted")
	}
}

func TestEndToEndBenchmarkRunProducesTrace(t *testing.T) {
	cores := 16
	m := newMachine(t, cores)
	b, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	streams, err := StreamsFromBenchmark(b, smallConfig(cores), 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(streams)
	if err != nil {
		t.Fatal(err)
	}
	if res.RuntimeCycles == 0 || res.L2Misses == 0 {
		t.Fatalf("implausible run: %+v", res)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.AvgMemLatency <= float64(DefaultConfig(cores).L2HitCycles) {
		t.Errorf("avg memory latency %.1f implausibly low", res.AvgMemLatency)
	}
}

// TestMNoCOutperformsRNoC is the paper's performance claim in miniature:
// on identical streams, the flat mNoC crossbar finishes no later than
// the clustered rNoC (Table 1's 1.1× performance). 64 cores is the
// smallest scale at which the serpentine geometry is meaningful — below
// that the fixed 18 cm waveguide is stretched over too few nodes.
func TestMNoCOutperformsRNoC(t *testing.T) {
	cores := 64
	b, err := workload.ByName("water_ns")
	if err != nil {
		t.Fatal(err)
	}
	streams, err := StreamsFromBenchmark(b, smallConfig(cores), 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	run := func(n noc.Network) uint64 {
		m, err := NewMachine(smallConfig(cores), n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(streams)
		if err != nil {
			t.Fatal(err)
		}
		return res.RuntimeCycles
	}
	mn, err := noc.NewMNoC(cores)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := noc.NewRNoC(cores, 4)
	if err != nil {
		t.Fatal(err)
	}
	tm := run(mn)
	tr := run(rn)
	if tm >= tr {
		t.Errorf("mNoC runtime %d not below rNoC %d", tm, tr)
	}
}

func TestRunDeterministic(t *testing.T) {
	cores := 8
	b, err := workload.ByName("barnes")
	if err != nil {
		t.Fatal(err)
	}
	streams, err := StreamsFromBenchmark(b, smallConfig(cores), 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := newMachine(t, cores).Run(streams)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := newMachine(t, cores).Run(streams)
	if err != nil {
		t.Fatal(err)
	}
	if r1.RuntimeCycles != r2.RuntimeCycles || len(r1.Trace.Packets) != len(r2.Trace.Packets) {
		t.Errorf("nondeterministic: %d/%d vs %d/%d",
			r1.RuntimeCycles, len(r1.Trace.Packets), r2.RuntimeCycles, len(r2.Trace.Packets))
	}
}

// TestBroadcastInvReducesPackets exercises the Section 7 extension: on a
// widely-shared write-heavy pattern, broadcast invalidation must put
// fewer packets on the network without breaking the protocol.
func TestBroadcastInvReducesPackets(t *testing.T) {
	cores := 16
	shared := uint64(0x40)
	streams := make([][]Access, cores)
	// All cores read the block, then core 0 writes it, repeatedly.
	for round := 0; round < 20; round++ {
		for c := 1; c < cores; c++ {
			streams[c] = append(streams[c], Access{Addr: shared})
		}
		streams[0] = append(streams[0], Access{Write: true, Addr: shared})
	}
	run := func(broadcast bool) *Result {
		cfg := smallConfig(cores)
		cfg.BroadcastInv = broadcast
		net, err := noc.NewMNoC(cores)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMachine(cfg, net)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(streams)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	uni := run(false)
	bc := run(true)
	if bc.Directory.BroadcastInvs == 0 {
		t.Fatal("broadcast invalidation never used")
	}
	if len(bc.Trace.Packets) >= len(uni.Trace.Packets) {
		t.Errorf("broadcast packets %d not below unicast %d",
			len(bc.Trace.Packets), len(uni.Trace.Packets))
	}
	if bc.RuntimeCycles > uni.RuntimeCycles {
		t.Errorf("broadcast runtime %d worse than unicast %d", bc.RuntimeCycles, uni.RuntimeCycles)
	}
	// Same work either way.
	if bc.Accesses != uni.Accesses || bc.Directory.Writes != uni.Directory.Writes {
		t.Error("protocol behaviour diverged")
	}
}

// TestStreamsIncludeGlobalSharing: generated streams must contain
// globally shared blocks (barrier/lock style), which manifest as
// multi-sharer invalidations when broadcast invalidation is enabled.
func TestStreamsIncludeGlobalSharing(t *testing.T) {
	cores := 32
	b, err := workload.ByName("water_ns")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(cores)
	cfg.BroadcastInv = true
	streams, err := StreamsFromBenchmark(b, cfg, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := noc.NewMNoC(cores)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(streams)
	if err != nil {
		t.Fatal(err)
	}
	if res.Directory.BroadcastInvs == 0 {
		t.Error("no multi-sharer invalidations — global blocks missing from streams")
	}
}

func TestRunRecordsTelemetry(t *testing.T) {
	cores := 8
	m := newMachine(t, cores)
	b, err := workload.Resolve("fft")
	if err != nil {
		t.Fatal(err)
	}
	streams, err := StreamsFromBenchmark(b, smallConfig(cores), 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(64)
	m.SetTelemetry(reg, tr)
	res, err := m.Run(streams)
	if err != nil {
		t.Fatal(err)
	}

	// Registry counters mirror the run result exactly.
	for name, want := range map[string]uint64{
		"sim.runs":      1,
		"sim.accesses":  uint64(res.Accesses),
		"sim.l2_misses": uint64(res.L2Misses),
		"sim.packets":   uint64(len(res.Trace.Packets)),
		"sim.retries":   res.Retries,
		"sim.nacks":     res.NACKs,
		"sim.lost":      res.LostPackets,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if reg.Counter("sim.accesses").Value() == 0 {
		t.Fatal("run recorded no accesses")
	}

	// The run span names the network and core count.
	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("run recorded no spans")
	}
	sp := spans[len(spans)-1]
	if sp.Component != "sim" || sp.Name != "run."+res.NetworkName || sp.Attrs["cores"] != "8" {
		t.Errorf("run span = %+v", sp)
	}
}
