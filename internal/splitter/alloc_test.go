// Allocation bound for the splitter recurrence (the allocation
// campaign): buildDesign now runs its backward recurrence in one
// consolidated scratch array, so a full Solve is pinned to a small
// constant number of allocations — a design sweep over 256 sources
// must not regress into per-node garbage.
package splitter

import (
	"testing"
)

func TestSolveAllocationBound(t *testing.T) {
	n := 64
	p := DefaultParams(n)
	src := n / 2
	// Two-mode distance topology for one source: the 16 nearest
	// neighbours in mode 0, everything farther in mode 1 (package topo
	// builds the same shape, but importing it here would cycle).
	modeOf := make([]int, n)
	for j := range modeOf {
		switch d := j - src; {
		case j == src:
			modeOf[j] = -1
		case d >= -8 && d <= 8:
			modeOf[j] = 0
		default:
			modeOf[j] = 1
		}
	}
	weights := []float64{0.5, 0.5}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := Solve(p, src, modeOf, weights); err != nil {
			t.Fatal(err)
		}
	})
	// Expected steady state: recurrence scratch, taps, α vector (search
	// + copy), mode costs, mode powers, and the Design itself — all
	// O(1) in count, O(n) in bytes. The bound leaves slack for compiler
	// variation but fails if the recurrence regresses to per-node or
	// per-iteration allocation.
	if allocs > 10 {
		t.Errorf("Solve allocates %.1f times per call, want ≤ 10", allocs)
	}
}
