package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"mnoc/internal/adapt"
	"mnoc/internal/workload"
)

// TestHealthzDraining is the regression test for the drain handshake:
// once graceful drain begins, /healthz flips to 503 `draining` so load
// balancers stop routing before the listener closes.
func TestHealthzDraining(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d, want 200", resp.StatusCode)
	}

	s.StartDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d, want 503", resp.StatusCode)
	}
	if body.Status != "draining" {
		t.Fatalf("healthz during drain: status %q, want \"draining\"", body.Status)
	}
}

// adaptTestController builds a small lockstep controller and replays
// the canonical phase-shift workload through it.
func adaptTestController(t *testing.T) *adapt.Controller {
	t.Helper()
	c, err := adapt.NewController(adapt.Config{
		N:            16,
		WindowCycles: 25_000,
		Seed:         7,
		QAPIters:     100,
		Lockstep:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.PhasedTrace(16, []workload.Phase{
		{Bench: "water_s", Cycles: 100_000, Flits: 2000},
		{Bench: "radix", Cycles: 100_000, Flits: 2000},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Replay(tr, nil); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAdaptEndpoints(t *testing.T) {
	cfg := testConfig()
	cfg.Adapt = adaptTestController(t)
	_, ts := newTestServer(t, cfg)

	resp, err := http.Get(ts.URL + "/v1/adapt")
	if err != nil {
		t.Fatal(err)
	}
	var st adapt.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/adapt: %d", resp.StatusCode)
	}
	if st.Counts.Swaps < 1 || st.Generation == 0 {
		t.Fatalf("/v1/adapt reported no adaptation: %+v", st)
	}

	resp, body := post(t, ts.URL+"/v1/adapt/evaluate", map[string]string{"bench": "fft"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/adapt/evaluate: %d: %s", resp.StatusCode, body)
	}
	var ev AdaptEvaluateResponse
	if err := json.Unmarshal(body, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Generation != st.Generation {
		t.Errorf("evaluate answered at gen %d, status reports gen %d", ev.Generation, st.Generation)
	}
	if ev.TotalWatts <= 0 {
		t.Errorf("evaluate total_watts = %v, want > 0", ev.TotalWatts)
	}

	resp, body = post(t, ts.URL+"/v1/adapt/evaluate", map[string]string{"bench": "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown bench: %d, want 400: %s", resp.StatusCode, body)
	}
}

func TestAdaptDisabled(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	resp, err := http.Get(ts.URL + "/v1/adapt")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/adapt without -adapt: %d, want 404", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/v1/adapt/evaluate", map[string]string{"bench": "fft"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/adapt/evaluate without -adapt: %d, want 404", resp.StatusCode)
	}
}
