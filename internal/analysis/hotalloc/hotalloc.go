// Package hotalloc polices allocation on the benchmark-guarded hot
// paths. Roots are functions carrying //mnoclint:hot in their doc
// comment — the repository marks exactly the kernels the curated
// BENCH_baseline.json entries time — and the rule applies to every
// function reachable from a root through the module call graph, so an
// allocation introduced three calls below the kernel is still caught
// before `make bench-check` fails on the allocs/op regression.
//
// Four allocation forms are flagged (each names the root it is
// reachable from):
//
//   - fmt.Sprintf: allocates its result and boxes every argument;
//   - map composite literals and make(map...): per-call map allocation;
//   - append to a slice declared in-function without capacity: the
//     growth doubling re-allocates inside the loop;
//   - implicit interface conversion of a non-pointer-shaped concrete
//     value (struct, slice, string, numeric): the boxing allocates.
//     Error-interface targets, untyped nil, and arguments to
//     fmt.Errorf/errors.New/panic are exempt — error paths are off the
//     measured path.
package hotalloc

import (
	"go/ast"
	"go/types"

	"mnoc/internal/analysis"
)

// Analyzer is the hot-path allocation rule.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "functions reachable from //mnoclint:hot roots (the benchmarked kernels) may not " +
		"introduce fmt.Sprintf, map literals, uncapped append growth, or interface boxing",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			root := pass.Module.HotRootOf(fn)
			if root == "" {
				continue
			}
			checkFunc(pass, fd, root)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, root string) {
	info := pass.Info
	uncapped := collectUncappedSlices(info, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(),
						"map allocated on the hot path reachable from %s: hoist it out of the kernel or reuse a cleared map", root)
				}
			}
		case *ast.CallExpr:
			checkCall(pass, n, uncapped, root)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, uncapped map[types.Object]bool, root string) {
	info := pass.Info

	if b, ok := builtinOf(info, call); ok {
		switch b {
		case "make":
			if len(call.Args) >= 1 {
				if tv, ok := info.Types[call.Args[0]]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(call.Pos(),
							"map allocated on the hot path reachable from %s: hoist it out of the kernel or reuse a cleared map", root)
					}
				}
			}
		case "append":
			if len(call.Args) == 0 {
				return
			}
			obj := analysis.BaseIdentObj(info, call.Args[0])
			if obj != nil && uncapped[obj] {
				pass.Reportf(call.Pos(),
					"append to %s grows an uncapped slice on the hot path reachable from %s: preallocate with make(_, 0, cap) or reuse a pooled buffer", obj.Name(), root)
			}
		}
		return // other builtins (panic, len, cap, ...) never box
	}

	if analysis.IsPkgFunc(info, call, "fmt", "Sprintf") {
		pass.Reportf(call.Pos(),
			"fmt.Sprintf on the hot path reachable from %s: it allocates its result and boxes every argument; format into a reusable buffer or use strconv", root)
		return
	}
	// Error constructors live on failure paths, which the benchmarks
	// never take; boxing there is fine.
	if analysis.IsPkgFunc(info, call, "fmt", "Errorf") ||
		analysis.IsPkgFunc(info, call, "errors", "New") {
		return
	}

	sig := signatureOf(info, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i)
		if pt == nil {
			continue
		}
		iface, ok := pt.Underlying().(*types.Interface)
		if !ok || analysis.IsErrorType(pt) {
			continue
		}
		_ = iface
		tv, ok := info.Types[arg]
		if !ok || tv.IsNil() {
			continue
		}
		at := tv.Type
		if _, already := at.Underlying().(*types.Interface); already {
			continue // interface to interface: no new box
		}
		if isPointerShaped(at) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"%s boxed into an interface on the hot path reachable from %s: the conversion allocates per call; keep the concrete type", types.TypeString(at, types.RelativeTo(pass.Pkg)), root)
	}
}

// collectUncappedSlices finds slice variables declared in fd without a
// capacity: `var x []T`, `x := []T{...}`, `x := make([]T, n)` (no cap).
func collectUncappedSlices(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	uncapped := map[types.Object]bool{}
	defObj := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		return info.Defs[id]
	}
	uncappedRhs := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.CompositeLit:
			tv, ok := info.Types[e]
			if !ok {
				return false
			}
			_, isSlice := tv.Type.Underlying().(*types.Slice)
			return isSlice
		case *ast.CallExpr:
			if b, ok := builtinOf(info, e); ok && b == "make" && len(e.Args) == 2 {
				if tv, ok := info.Types[e.Args[0]]; ok {
					_, isSlice := tv.Type.Underlying().(*types.Slice)
					return isSlice
				}
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if obj := defObj(lhs); obj != nil && uncappedRhs(n.Rhs[i]) {
					uncapped[obj] = true
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					obj := info.Defs[name]
					if obj == nil {
						continue
					}
					if i < len(vs.Values) {
						if uncappedRhs(vs.Values[i]) {
							uncapped[obj] = true
						}
						continue
					}
					// `var x []T` with no initializer: nil slice, grows
					// from zero capacity.
					if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
						uncapped[obj] = true
					}
				}
			}
		}
		return true
	})
	return uncapped
}

// builtinOf resolves call to a builtin name.
func builtinOf(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name(), true
	}
	return "", false
}

// signatureOf returns the static signature of the called expression —
// works for dynamic calls too, and nil for conversions and builtins.
func signatureOf(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// paramType resolves the declared type of argument i, unwrapping the
// variadic element.
func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if sl, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// isPointerShaped reports whether boxing t into an interface stores the
// word directly, without allocating a copy of the data.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
