package exp

import (
	"strings"
	"testing"

	"mnoc/internal/runner/artifact"
)

// small returns reduced options for cache-behaviour tests.
func small() Options {
	return Options{N: 16, Seed: 1, QAPIters: 50, Cycles: 1e6, SimAccesses: 20}
}

func TestPrecomputeJoinsAllErrors(t *testing.T) {
	c, err := NewContext(small())
	if err != nil {
		t.Fatal(err)
	}
	err = c.precomputeNames(bg, []string{"no_such_bench_a", "fft", "no_such_bench_b"}, 4)
	if err == nil {
		t.Fatal("bogus benchmarks precomputed without error")
	}
	msg := err.Error()
	for _, want := range []string{"no_such_bench_a", "no_such_bench_b"} {
		if !strings.Contains(msg, want) {
			t.Errorf("joined error misses %q: %v", want, msg)
		}
	}
}

func TestWarmStoreSkipsSolves(t *testing.T) {
	store := artifact.NewMemory()
	cold, err := NewContextWithStore(small(), store)
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Precompute(bg, 4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cold.Performance(bg, "fft"); err != nil {
		t.Fatal(err)
	}
	cs := cold.Solves()
	if cs.Shapes == 0 || cs.QAP == 0 || cs.Sims == 0 {
		t.Fatalf("cold run did not solve: %+v", cs)
	}

	// A second context over the same store must load everything.
	warm, err := NewContextWithStore(small(), store)
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Precompute(bg, 4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := warm.Performance(bg, "fft"); err != nil {
		t.Fatal(err)
	}
	if ws := warm.Solves(); ws != (SolveCounts{}) {
		t.Fatalf("warm run re-solved: %+v", ws)
	}

	// Warm values must be identical to cold ones.
	for _, name := range []string{"fft", "radix"} {
		cm, err := cold.Mapped(bg, name)
		if err != nil {
			t.Fatal(err)
		}
		wm, err := warm.Mapped(bg, name)
		if err != nil {
			t.Fatal(err)
		}
		for s := range cm.Counts {
			for d := range cm.Counts[s] {
				if cm.Counts[s][d] != wm.Counts[s][d] {
					t.Fatalf("%s mapped(%d,%d) differs: %v vs %v",
						name, s, d, cm.Counts[s][d], wm.Counts[s][d])
				}
			}
		}
	}

	// Different options must not alias the same artefacts.
	other := small()
	other.Seed = 2
	o, err := NewContextWithStore(other, store)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Shape(bg, "fft"); err != nil {
		t.Fatal(err)
	}
	if o.Solves().Shapes != 1 {
		t.Fatal("different seed hit the cache")
	}
}
