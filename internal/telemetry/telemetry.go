// Package telemetry is the repository's zero-dependency observability
// layer: named counters, gauges and fixed-bucket histograms behind a
// concurrency-safe Registry, plus a lightweight span tracer (package
// file tracer.go) recording into a bounded ring buffer with JSONL and
// Chrome-trace exporters.
//
// The design mirrors what PROTEUS-style photonic NoC management loops
// need — continuous loss/power/latency telemetry cheap enough to leave
// on — while staying stdlib-only. Every handle type is nil-safe: a nil
// *Registry hands out nil *Counter/*Gauge/*Histogram whose methods are
// no-ops, so instrumented code never guards its metric calls. Hot-path
// cost is one atomic op per counter update.
//
// Metric names are dotted lowercase paths (`artifact.hit`,
// `runner.entry_ms`); docs/TELEMETRY.md lists every name the mnoc
// binary emits, and testdata/golden/metrics_names.txt pins that set.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
)

// Registry is a concurrency-safe namespace of metrics. Metrics are
// created on first use and live for the registry's lifetime. The zero
// value is not usable; call NewRegistry. All methods are safe on a nil
// receiver (they return nil handles, whose methods are no-ops).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram with the
// given bucket upper bounds (an implicit +Inf overflow bucket is always
// appended). Bounds are sorted and deduplicated; non-finite bounds are
// dropped. If the name already exists the existing histogram is
// returned and the bounds argument is ignored, so the first
// registration fixes the layout.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is a histogram's exported state.
type HistogramSnapshot struct {
	// Buckets holds one cumulative-free (per-bucket, not cumulative)
	// count per bound, last entry being the +Inf overflow bucket.
	Buckets []BucketCount `json:"buckets"`
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
}

// BucketCount is one histogram bucket: observations v with
// prev_bound < v <= LE. LE is a string so the +Inf overflow bucket
// stays representable in JSON.
type BucketCount struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// Snapshot is a point-in-time copy of every metric in a registry.
// Maps marshal with sorted keys, so WriteJSON output is canonical.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state. A nil registry yields
// an empty (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		v := g.Value()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0 // keep the JSON export valid
		}
		s.Gauges[name] = v
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Names returns the sorted union of all metric names in the snapshot —
// the instrumentation surface, diffed against a golden file in CI.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	blob, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	blob = append(blob, '\n')
	_, err = w.Write(blob)
	return err
}

// Report is the per-run structured summary written by the mnoc
// `-metrics-out` flag: run metadata (subcommand, scale, seed, workers,
// wall time) plus the full metric snapshot, so benchmark trajectories
// diff mechanically across runs.
type Report struct {
	Meta    map[string]any `json:"meta,omitempty"`
	Metrics Snapshot       `json:"metrics"`
}

// WriteJSON writes the report as indented JSON.
func (rep Report) WriteJSON(w io.Writer) error {
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	blob = append(blob, '\n')
	_, err = w.Write(blob)
	return err
}

// formatBound renders a bucket bound the way the exporters and docs
// spell it: shortest round-trippable decimal, "+Inf" for the overflow.
func formatBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
