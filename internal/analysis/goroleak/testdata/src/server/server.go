// Fixtures for the goroleak analyzer, in a package named server so the
// scope rule applies.
package server

import (
	"context"

	"work"
)

func okLiteralSelect(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

func okNamedCallee(ctx context.Context, ch chan int) {
	go work.Pump(ctx, ch)
}

// okTransitive spawns a function whose cancellation check is one more
// call away — only the propagated fact can clear it.
func okTransitive(ctx context.Context, ch chan int) {
	go work.Relay(ctx, ch)
}

func okLiteralCallsAware(ctx context.Context, ch chan int) {
	go func() {
		work.Pump(ctx, ch)
	}()
}

func okDynamicWithContext(ctx context.Context, fn func(context.Context)) {
	go fn(ctx)
}

func okRangeOverChannel(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

func badLiteral(ch chan int) {
	go func() { // want `goroleak: goroutine has no cancellation path`
		for {
			ch <- 1
		}
	}()
}

func badNamed() {
	go work.Spin() // want `goroleak: goroutine running Spin has no cancellation path`
}

func badDynamic(fn func()) {
	go fn() // want `goroleak: goroutine spawned through a function value without a context`
}

func allowedSpawn(ch chan int) {
	//mnoclint:allow goroleak sends once into a buffered channel and exits
	go func() {
		ch <- 1
	}()
}
